"""Read-write workload execution (Section 6.3 / Fig. 10).

The driver inserts the held-out half of a dataset in batches into two
indexes in parallel — one CSV-enhanced, one original — and measures,
after every batch, the query cost over the promoted keys, the storage
sizes, and the wall-clock insertion times.  CSV is *not* re-run
between batches, exactly as in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.cost_model import CostConstants
from ..indexes.base import LearnedIndex
from .readonly import QueryProfile, profile_queries

__all__ = ["BatchObservation", "run_insert_batches"]


@dataclass(frozen=True)
class BatchObservation:
    """Measurements taken after one insertion batch.

    ``batch_index`` 0 is the state before any insertion.
    """

    batch_index: int
    inserted_so_far: int
    enhanced_profile: QueryProfile
    original_profile: QueryProfile
    enhanced_size_bytes: int
    original_size_bytes: int
    enhanced_insert_seconds: float
    original_insert_seconds: float

    @property
    def total_time_saved_ns(self) -> float:
        return (
            self.original_profile.total_simulated_ns
            - self.enhanced_profile.total_simulated_ns
        )

    @property
    def storage_increase_pct(self) -> float:
        if self.original_size_bytes == 0:
            return 0.0
        return 100.0 * (self.enhanced_size_bytes - self.original_size_bytes) / self.original_size_bytes

    @property
    def insert_time_increase_pct(self) -> float:
        if self.original_insert_seconds == 0.0:
            return 0.0
        return 100.0 * (
            self.enhanced_insert_seconds - self.original_insert_seconds
        ) / self.original_insert_seconds


def _timed_inserts(index: LearnedIndex, batch: np.ndarray) -> float:
    """Wall-time one insertion batch through the batch API.

    :meth:`~repro.indexes.base.LearnedIndex.insert_many` keeps any
    per-key structural work inside the index; the driver itself no
    longer loops over keys in Python.
    """
    start = time.perf_counter()
    index.insert_many(batch)
    return time.perf_counter() - start


def run_insert_batches(
    enhanced: LearnedIndex,
    original: LearnedIndex,
    batches: tuple[np.ndarray, ...],
    query_keys: np.ndarray,
    constants: CostConstants | None = None,
) -> list[BatchObservation]:
    """Drive the paper's batched-insertion protocol on both indexes.

    Returns one :class:`BatchObservation` per state (before the first
    batch and after each batch).
    """
    observations = [
        BatchObservation(
            batch_index=0,
            inserted_so_far=0,
            enhanced_profile=profile_queries(enhanced, query_keys, constants),
            original_profile=profile_queries(original, query_keys, constants),
            enhanced_size_bytes=enhanced.size_bytes(),
            original_size_bytes=original.size_bytes(),
            enhanced_insert_seconds=0.0,
            original_insert_seconds=0.0,
        )
    ]
    inserted = 0
    for batch_no, batch in enumerate(batches, start=1):
        enhanced_seconds = _timed_inserts(enhanced, batch)
        original_seconds = _timed_inserts(original, batch)
        inserted += int(batch.size)
        observations.append(
            BatchObservation(
                batch_index=batch_no,
                inserted_so_far=inserted,
                enhanced_profile=profile_queries(enhanced, query_keys, constants),
                original_profile=profile_queries(original, query_keys, constants),
                enhanced_size_bytes=enhanced.size_bytes(),
                original_size_bytes=original.size_bytes(),
                enhanced_insert_seconds=enhanced_seconds,
                original_insert_seconds=original_seconds,
            )
        )
    return observations
