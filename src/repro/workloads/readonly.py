"""Read-only query execution with cost aggregation.

The profiler drives the index through the batch query engine
(:meth:`~repro.indexes.base.LearnedIndex.lookup_many`): the whole
query array goes down in one call and the per-query cost vectors come
back as numpy arrays, so aggregation is a handful of reductions
instead of a Python loop over :class:`QueryStats` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cost_model import CostConstants
from ..core.exceptions import InvalidKeysError
from ..indexes.base import BatchQueryStats, LearnedIndex, QueryStats

__all__ = ["QueryProfile", "profile_queries"]


@dataclass(frozen=True)
class QueryProfile:
    """Aggregated cost of one query batch over one index.

    ``simulated ns`` figures come from the deterministic cost model
    (see DESIGN.md §3); they are the per-query latencies the paper
    reports from wall-clock measurement.
    """

    n_queries: int
    hit_rate: float
    avg_levels: float
    avg_search_steps: float
    avg_simulated_ns: float
    total_simulated_ns: float

    @classmethod
    def from_batch(
        cls, batch: BatchQueryStats, constants: CostConstants | None = None
    ) -> "QueryProfile":
        """Aggregate a :class:`BatchQueryStats` (pure array reductions)."""
        if batch.n_queries == 0:
            raise InvalidKeysError("cannot profile an empty query batch")
        consts = constants or CostConstants()
        ns = batch.simulated_ns(consts)
        return cls(
            n_queries=batch.n_queries,
            hit_rate=batch.hit_rate,
            avg_levels=float(batch.levels.mean()),
            avg_search_steps=float(batch.search_steps.mean()),
            avg_simulated_ns=float(ns.mean()),
            total_simulated_ns=float(ns.sum()),
        )

    @classmethod
    def from_stats(
        cls, stats: list[QueryStats], constants: CostConstants | None = None
    ) -> "QueryProfile":
        """Aggregate scalar :class:`QueryStats` (compatibility path)."""
        if not stats:
            raise InvalidKeysError("cannot profile an empty query batch")
        return cls.from_batch(BatchQueryStats.from_query_stats(stats), constants)


def profile_queries(
    index: LearnedIndex,
    query_keys: np.ndarray,
    constants: CostConstants | None = None,
) -> QueryProfile:
    """Run *query_keys* against *index* and aggregate the costs.

    Executes the batch through :meth:`LearnedIndex.lookup_many`, so no
    per-key Python dispatch happens on the hot path.
    """
    batch = index.lookup_many(np.asarray(query_keys))
    return QueryProfile.from_batch(batch, constants)
