"""Read-only query execution with cost aggregation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cost_model import CostConstants
from ..core.exceptions import InvalidKeysError
from ..indexes.base import LearnedIndex, QueryStats

__all__ = ["QueryProfile", "profile_queries"]


@dataclass(frozen=True)
class QueryProfile:
    """Aggregated cost of one query batch over one index.

    ``simulated ns`` figures come from the deterministic cost model
    (see DESIGN.md §3); they are the per-query latencies the paper
    reports from wall-clock measurement.
    """

    n_queries: int
    hit_rate: float
    avg_levels: float
    avg_search_steps: float
    avg_simulated_ns: float
    total_simulated_ns: float

    @classmethod
    def from_stats(
        cls, stats: list[QueryStats], constants: CostConstants | None = None
    ) -> "QueryProfile":
        if not stats:
            raise InvalidKeysError("cannot profile an empty query batch")
        consts = constants or CostConstants()
        ns = np.asarray([s.simulated_ns(consts) for s in stats])
        return cls(
            n_queries=len(stats),
            hit_rate=float(np.mean([s.found for s in stats])),
            avg_levels=float(np.mean([s.levels for s in stats])),
            avg_search_steps=float(np.mean([s.search_steps for s in stats])),
            avg_simulated_ns=float(ns.mean()),
            total_simulated_ns=float(ns.sum()),
        )


def profile_queries(
    index: LearnedIndex,
    query_keys: np.ndarray,
    constants: CostConstants | None = None,
) -> QueryProfile:
    """Run *query_keys* against *index* and aggregate the costs."""
    stats = index.batch_stats(np.asarray(query_keys))
    return QueryProfile.from_stats(stats, constants)
