"""Range partitioning: choose shard boundaries from the key CDF.

Two modes:

* ``equi_depth`` — boundaries at the K-quantiles of the key array, so
  every shard holds (almost exactly) ``n / K`` keys.  This balances
  *storage*, not query cost: a shard covering a hard region of the CDF
  (high local model error) answers slower than its siblings.
* ``cost_balanced`` — boundaries equalise the *predicted per-shard
  query cost* under the paper's cost model (Eq. 22 via
  :mod:`repro.core.cost_model`): the keys are cut into fine chunks,
  each chunk is priced as ``n_chunk · node_cost(expected_search_steps
  (SSE, n_chunk), 1)`` from its refitted linear model's SSE, and the
  cumulative cost curve is cut into K equal parts.  Hard regions get
  narrower (smaller) shards.

A :class:`ShardPlan` also carries one smoothing α per shard.  Because
every shard is smoothed *independently*, a plan can spend more virtual
points on harder shards (``alphas="auto"``) — an experiment the
paper's single-index evaluation cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.cost_model import CostConstants, expected_search_steps, node_cost
from ..core.csv_algorithm import CsvConfig, CsvReport, apply_csv
from ..core.exceptions import InvalidKeysError
from ..core.segment_stats import SegmentStats, validate_keys
from ..indexes import INDEX_FAMILIES, adapter_for
from ..indexes.base import LearnedIndex, prepare_key_values

__all__ = [
    "SMOOTHABLE_FAMILIES",
    "ShardPlan",
    "auto_alphas",
    "build_shard_indexes",
    "plan_shards",
    "predicted_shard_cost",
]

#: Families CSV integrates with — the only ones a per-shard α affects.
SMOOTHABLE_FAMILIES = ("alex", "lipp", "sali")

#: Partitioning modes understood by :func:`plan_shards`.
MODES = ("equi_depth", "cost_balanced")


def predicted_shard_cost(
    keys: np.ndarray, constants: CostConstants | None = None
) -> float:
    """Predicted total query cost of serving *keys* from one node.

    Prices the shard as a single root-level model node (Eq. 22): the
    refitted linear model's SSE gives the expected in-node search
    steps, and every key is assumed queried once.  Absolute values
    only matter relative to other shards.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return 0.0
    if keys.size < 2:
        loss = 0.0
    else:
        loss = SegmentStats(keys).base_loss()
    searches = expected_search_steps(loss, int(keys.size))
    return float(keys.size) * node_cost(searches, 1, constants)


@dataclass(frozen=True)
class ShardPlan:
    """A range partitioning of one key set into K shards.

    Attributes:
        boundaries: ``K-1`` non-decreasing cut keys; a query key ``k``
            belongs to shard ``searchsorted(boundaries, k, 'right')``
            (so ``boundaries[i]`` is the smallest key of shard
            ``i+1``).  Equal adjacent boundaries produce an empty
            shard in between — legal, and served as all-miss.
        shard_keys / shard_values: the per-shard key/value slices.
        alphas: per-shard smoothing α (None = shard not smoothed).
        mode: the partitioning mode that produced the plan.
        predicted_costs: :func:`predicted_shard_cost` of every shard.
    """

    boundaries: np.ndarray
    shard_keys: tuple[np.ndarray, ...]
    shard_values: tuple[np.ndarray, ...]
    alphas: tuple[float | None, ...]
    mode: str
    predicted_costs: tuple[float, ...] = field(default=())

    @property
    def n_shards(self) -> int:
        return len(self.shard_keys)

    @property
    def n_keys(self) -> int:
        return int(sum(k.size for k in self.shard_keys))

    def shard_of(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorised shard assignment of a query batch."""
        return np.searchsorted(
            self.boundaries, np.asarray(keys, dtype=np.int64), side="right"
        )

    def cost_imbalance(self) -> float:
        """max/mean ratio of the predicted per-shard costs (1.0 = flat)."""
        costs = np.asarray(self.predicted_costs, dtype=np.float64)
        if costs.size == 0 or costs.mean() == 0.0:
            return 1.0
        return float(costs.max() / costs.mean())


def auto_alphas(
    predicted_costs: Sequence[float], base_alpha: float, cap: float = 1.0
) -> tuple[float, ...]:
    """Spend the smoothing budget where the cost model says it hurts.

    Scales *base_alpha* per shard by the shard's share of the total
    predicted cost (mean-normalised, clipped to ``[0, cap]``), so the
    aggregate virtual-point budget stays ≈ ``base_alpha · n`` while
    hard shards get more of it.
    """
    costs = np.asarray(predicted_costs, dtype=np.float64)
    if costs.size == 0 or costs.sum() == 0.0:
        return tuple(float(base_alpha) for _ in range(costs.size))
    scaled = base_alpha * costs / costs.mean()
    return tuple(float(a) for a in np.clip(scaled, 0.0, cap))


def _equi_depth_cuts(n: int, k: int) -> np.ndarray:
    """Key-array positions starting shards 1..K-1."""
    return np.asarray([(n * i) // k for i in range(1, k)], dtype=np.int64)


def _cost_balanced_cuts(
    keys: np.ndarray, k: int, constants: CostConstants | None
) -> np.ndarray:
    """Positions cutting the cumulative predicted-cost curve K ways.

    The keys are diced into fine chunks (well below the shard
    granularity), each chunk priced with :func:`predicted_shard_cost`,
    and shard starts placed where the cumulative cost crosses each
    ``j/K`` of the total.  Two quantiles landing in one chunk collapse
    to the same position — that shard comes out empty rather than the
    cut being silently moved.
    """
    n = int(keys.size)
    n_chunks = min(n, max(64, 16 * k))
    chunk_bounds = np.linspace(0, n, n_chunks + 1).astype(np.int64)
    chunk_costs = np.asarray(
        [
            predicted_shard_cost(keys[lo:hi], constants)
            for lo, hi in zip(chunk_bounds[:-1], chunk_bounds[1:])
        ]
    )
    cumulative = np.concatenate([[0.0], np.cumsum(chunk_costs)])
    total = cumulative[-1]
    if total == 0.0:
        return _equi_depth_cuts(n, k)
    targets = total * np.arange(1, k) / k
    chunk_idx = np.searchsorted(cumulative, targets, side="left")
    chunk_idx = np.clip(chunk_idx, 1, n_chunks)
    return chunk_bounds[chunk_idx]


def plan_shards(
    keys: np.ndarray | list,
    n_shards: int,
    values: np.ndarray | list | None = None,
    mode: str = "equi_depth",
    alpha: float | Sequence[float] | str | None = None,
    constants: CostConstants | None = None,
) -> ShardPlan:
    """Choose K shard boundaries from the key CDF and slice the data.

    Args:
        keys: sorted unique int keys (the usual build contract).
        n_shards: K ≥ 1.
        values: optional payloads parallel to *keys*.
        mode: ``"equi_depth"`` or ``"cost_balanced"`` (see module doc).
        alpha: per-shard smoothing α — a scalar (same everywhere), a
            length-K sequence, the string ``"auto"`` (scalar budget
            redistributed by predicted cost; uses 0.1 as the base), or
            None (no smoothing).  ``"auto:<float>"`` sets the base.
        constants: cost-model constants for the cost-balanced mode.
    """
    arr, vals = prepare_key_values(validate_keys(keys), values)
    k = int(n_shards)
    if k < 1:
        raise InvalidKeysError("n_shards must be >= 1")
    if mode not in MODES:
        raise InvalidKeysError(f"unknown partitioning mode {mode!r}; choose from {MODES}")
    n = int(arr.size)
    if k == 1:
        cuts = np.empty(0, dtype=np.int64)
    elif mode == "equi_depth":
        cuts = _equi_depth_cuts(n, k)
    else:
        cuts = _cost_balanced_cuts(arr, k, constants)
    cuts = np.minimum(cuts, n - 1)
    boundaries = arr[cuts]
    starts = np.concatenate([[0], cuts])
    ends = np.concatenate([cuts, [n]])
    # Collapsed cuts (possible when K approaches n or a cost quantile
    # repeats a chunk) make ends < starts for the squeezed-out shard;
    # clamp to empty.
    ends = np.maximum(ends, starts)
    shard_keys = tuple(arr[lo:hi] for lo, hi in zip(starts, ends))
    shard_values = tuple(vals[lo:hi] for lo, hi in zip(starts, ends))
    costs = tuple(predicted_shard_cost(s, constants) for s in shard_keys)

    if alpha is None:
        alphas: tuple[float | None, ...] = tuple(None for _ in range(k))
    elif isinstance(alpha, str):
        if alpha == "auto":
            base = 0.1
        elif alpha.startswith("auto:"):
            base = float(alpha.split(":", 1)[1])
        else:
            raise InvalidKeysError(f"unknown alpha spec {alpha!r}")
        alphas = auto_alphas(costs, base)
    elif isinstance(alpha, (int, float)):
        alphas = tuple(float(alpha) for _ in range(k))
    else:
        if len(alpha) != k:
            raise InvalidKeysError("per-shard alphas must have one entry per shard")
        alphas = tuple(None if a is None else float(a) for a in alpha)

    return ShardPlan(
        boundaries=boundaries,
        shard_keys=shard_keys,
        shard_values=shard_values,
        alphas=alphas,
        mode=mode,
        predicted_costs=costs,
    )


def build_shard_indexes(
    plan: ShardPlan,
    family: str,
    constants: CostConstants | None = None,
) -> tuple[list[LearnedIndex | None], list[CsvReport | None]]:
    """Build (and independently smooth) one index per shard.

    Empty shards build to None — the router serves them as all-miss
    and the service lazily materialises them on first insert.  Shards
    of a :data:`SMOOTHABLE_FAMILIES` backend with a non-None α get CSV
    (Algorithm 2) applied in place with that shard's own budget; other
    families ignore α.  Returns the indexes and the per-shard CSV
    reports (None where not smoothed).
    """
    try:
        cls = INDEX_FAMILIES[family]
    except KeyError:
        raise InvalidKeysError(
            f"unknown index family {family!r}; choose from {sorted(INDEX_FAMILIES)}"
        ) from None
    indexes: list[LearnedIndex | None] = []
    reports: list[CsvReport | None] = []
    for shard_keys, shard_values, shard_alpha in zip(
        plan.shard_keys, plan.shard_values, plan.alphas
    ):
        if shard_keys.size == 0:
            indexes.append(None)
            reports.append(None)
            continue
        index = cls.build(shard_keys, shard_values)
        report = None
        if shard_alpha is not None and shard_alpha > 0.0 and family in SMOOTHABLE_FAMILIES:
            report = apply_csv(adapter_for(index, constants), CsvConfig(alpha=shard_alpha))
        indexes.append(index)
        reports.append(report)
    return indexes, reports
