"""Sharded serving layer: range partitioning, routing, and a
cache-fronted index service.

The paper evaluates one monolithic index at a time; this package
scales the PR-1 batch query engine horizontally.  A key set is
range-partitioned into K shards (:mod:`~repro.serving.partitioner`),
each shard is built — and optionally CSV-smoothed with its own α — as
an independent index, a vectorised scatter/gather router fans query
batches out and gathers the per-shard :class:`~repro.indexes.base.
BatchQueryStats` back into positional order
(:mod:`~repro.serving.router`), and :class:`~repro.serving.service.
IndexService` fronts the shards with a read-through LRU block cache,
per-shard write buffers with staleness-triggered merge + re-smoothing,
and per-shard latency percentile reporting.

Execution backends: the router runs shards serially, on a thread
pool, or on *worker processes* that serve zero-copy views of the
shard buffers out of shared memory — pick one with an
:class:`~repro.serving.executor.ExecutorSpec` (``"serial"``,
``"thread"``, ``"process"``; plus ``n_replicas`` / ``timeout_s`` for
process mode).  The legacy ``max_workers=`` / ``threaded=`` knobs
still work behind a deprecation shim.

Observability: the service keeps always-on per-shard latency
histograms (mergeable fixed-layout log buckets, see :mod:`repro.obs`)
behind :meth:`~repro.serving.service.IndexService.latency_report` and
:meth:`~repro.serving.service.IndexService.health_report`; process
executors additionally report per-replica liveness and restarts
(:class:`~repro.obs.health.ReplicaHealth`).  Everything else —
counters, gauges, spans — only records when an enabled
:class:`~repro.obs.metrics.MetricsRegistry` is installed.

The names re-exported here are the stable public surface of the
serving layer: routing types (:class:`RoutedBatch`), report types
(:class:`LatencyReport`, :class:`ShardLatency`, :class:`HealthReport`,
:class:`ShardHealth`, :class:`ReplicaHealth`), and the executor API
(:class:`ExecutorSpec`, :class:`ExecutorError`).  Callers should use
these rather than reaching into router internals.
"""

from ..obs.health import HealthReport, ReplicaHealth, ShardHealth

from .executor import ExecutorError, ExecutorSpec
from .partitioner import (
    SMOOTHABLE_FAMILIES,
    ShardPlan,
    auto_alphas,
    build_shard_indexes,
    plan_shards,
    predicted_shard_cost,
)
from .router import RoutedBatch, ShardRouter
from .service import IndexService, LatencyReport, ServiceStats, ShardLatency

__all__ = [
    "ExecutorError",
    "ExecutorSpec",
    "HealthReport",
    "IndexService",
    "LatencyReport",
    "ReplicaHealth",
    "RoutedBatch",
    "ShardHealth",
    "ShardLatency",
    "SMOOTHABLE_FAMILIES",
    "ServiceStats",
    "ShardPlan",
    "ShardRouter",
    "auto_alphas",
    "build_shard_indexes",
    "plan_shards",
    "predicted_shard_cost",
]
