"""`IndexService`: the cache-fronted, write-buffered serving facade.

Read path (per batch, all vectorised):

1. **Write buffers** — every shard's unmerged writes live in a
   memtable consulted first; a buffered hit answers without touching
   the shard (levels 0, one sorted-probe charge), and any query in a
   shard with a non-empty buffer pays the failed memtable probe.
2. **LRU block cache** — the key space is diced into fixed-span
   blocks (``key >> block_bits``); a cached block answers membership
   *and* misses for its span at levels 0 / 1 search step.  Uncached
   blocks touched by the batch are filled read-through with one
   ``range_query`` per block against the owning shard.
3. **Scatter/gather** — everything still pending goes down the
   :class:`~repro.serving.router.ShardRouter`.

Write path: ``insert_many`` lands in the per-shard buffers (last
write wins), invalidates the affected cache blocks, and when a
shard's staleness ``buffered / stored`` crosses the threshold the
buffer is merged into the shard and the shard is re-smoothed with its
own α (CSV families) — synchronously by default, or on a background
thread with ``background_merge=True``.

With the cache off and no writes buffered the service is
cost-transparent: a K=1 service is bit-identical to the bare index,
and any-K gathers are bit-identical to per-key routing (the
acceptance parity tests in ``tests/serving/``).
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, wait as futures_wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.cost_model import CostConstants
from ..core.csv_algorithm import CsvConfig, apply_csv
from ..core.exceptions import IndexStateError
from ..indexes import INDEX_FAMILIES, adapter_for
from ..indexes.base import (
    BatchQueryStats,
    LearnedIndex,
    _as_batch_kv,
    _as_query_array,
)
from ..obs.health import HealthReport, IMBALANCE_WARN, ShardHealth, shard_status
from ..obs.metrics import Histogram, MetricsRegistry, get_registry
from ..obs.tracing import trace
from .executor import ExecutorSpec
from .partitioner import (
    SMOOTHABLE_FAMILIES,
    ShardPlan,
    build_shard_indexes,
    plan_shards,
    predicted_shard_cost,
)
from ..store import CompactionStrategy, DurableStore, make_strategy
from .router import ShardRouter, dedupe_last_wins

__all__ = ["IndexService", "LatencyReport", "ServiceStats", "ShardLatency"]

#: Families whose indexes accept ``insert`` (merge by insertion);
#: static families are merged by rebuild instead.
UPDATABLE_FAMILIES = ("sorted_array", "btree", "alex", "lipp", "sali")


def _memtable_steps(n: int) -> int:
    """Probe charge for one sorted-memtable search over *n* entries."""
    return max(1, int(math.ceil(math.log2(n + 1))))


#: Default bound on how long :meth:`IndexService.close` waits for
#: in-flight background merges before abandoning them.
DEFAULT_CLOSE_TIMEOUT = 30.0


class _MergeWorker:
    """Single *daemon* merge thread with Future-based handoff.

    A stdlib ``ThreadPoolExecutor`` would do, except its threads are
    non-daemon and joined by an atexit hook — one hung merge would
    wedge the ``serve`` CLI (and any embedding process) on interpreter
    exit.  This worker keeps the Future interface but runs as a daemon
    thread, so :meth:`shutdown` can give up after a timeout and the
    process still exits.
    """

    def __init__(self) -> None:
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._run, name="merge", daemon=True
        )
        self._thread.start()

    def submit(self, fn: Callable, *args) -> Future:
        future: Future = Future()
        self._queue.put((future, fn, args))
        return future

    def qsize(self) -> int:
        """Merges accepted but not yet picked up by the worker."""
        return self._queue.qsize()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            future, fn, args = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # propagate through the Future
                future.set_exception(exc)

    def shutdown(self, timeout: float | None = None) -> bool:
        """Stop after the queued work; True if the thread exited."""
        self._queue.put(None)
        self._thread.join(timeout)
        return not self._thread.is_alive()


@dataclass
class ServiceStats:
    """Mutable operation counters of one service instance."""

    n_lookups: int = 0
    n_inserts: int = 0
    buffer_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_fills: int = 0
    merges: int = 0
    merged_keys: int = 0
    resmoothed_shards: int = 0
    flushes: int = 0
    flushed_keys: int = 0
    compactions: int = 0

    @property
    def cache_hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0


@dataclass(frozen=True)
class ShardLatency:
    """Simulated-ns latency summary of one shard."""

    shard: int
    n_queries: int
    avg_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float


@dataclass(frozen=True)
class LatencyReport:
    """Per-shard and aggregate latency percentiles (simulated ns)."""

    shards: tuple[ShardLatency, ...]
    total: ShardLatency | None = None

    def to_table(self) -> str:
        """Render the report as an ASCII table (one row per shard)."""
        from ..evaluation.reporting import ascii_table

        rows = [
            [
                "all" if row.shard < 0 else row.shard,
                row.n_queries,
                f"{row.avg_ns:.0f}",
                f"{row.p50_ns:.0f}",
                f"{row.p90_ns:.0f}",
                f"{row.p99_ns:.0f}",
            ]
            for row in (*self.shards, *((self.total,) if self.total else ()))
        ]
        return ascii_table(
            ["shard", "queries", "avg ns", "p50", "p90", "p99"], rows
        )


def _latency_row(shard: int, hist: Histogram) -> ShardLatency:
    return ShardLatency(
        shard=shard,
        n_queries=hist.count,
        avg_ns=hist.mean,
        p50_ns=hist.percentile(50),
        p90_ns=hist.percentile(90),
        p99_ns=hist.percentile(99),
    )


@dataclass
class _WriteBuffer:
    """One shard's memtable: insertion dict + sorted-array view.

    A lock serialises mutation against the background-merge thread;
    merges work from a :meth:`snapshot` and afterwards
    :meth:`drop_merged` only the entries the snapshot covered, so a
    write landing mid-merge survives in the buffer instead of being
    wiped by a blanket clear.
    """

    entries: dict[int, int] = field(default_factory=dict)
    _sorted: tuple[np.ndarray, np.ndarray] | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def put_run(self, keys: np.ndarray, values: np.ndarray) -> None:
        with self._lock:
            self.entries.update(zip(keys.tolist(), values.tolist()))
            self._sorted = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        with self._lock:
            if self._sorted is None:
                keys = np.fromiter(
                    self.entries.keys(), dtype=np.int64, count=len(self.entries)
                )
                order = np.argsort(keys)
                vals = np.fromiter(
                    self.entries.values(), dtype=np.int64, count=len(self.entries)
                )
                self._sorted = (keys[order], vals[order])
            return self._sorted

    def snapshot(self) -> dict[int, int]:
        with self._lock:
            return dict(self.entries)

    def drop_merged(self, merged: dict[int, int]) -> None:
        with self._lock:
            for key, value in merged.items():
                if self.entries.get(key) == value:
                    del self.entries[key]
            self._sorted = None

    def __len__(self) -> int:
        return len(self.entries)


class IndexService:
    """Sharded, cache-fronted serving facade over one index family."""

    def __init__(
        self,
        router: ShardRouter,
        family: str,
        plan: ShardPlan,
        constants: CostConstants | None = None,
        cache_blocks: int = 0,
        block_bits: int = 14,
        staleness_threshold: float = 0.1,
        background_merge: bool = False,
        metrics: MetricsRegistry | None = None,
        store: DurableStore | None = None,
        flush_threshold: int = 0,
        compaction: CompactionStrategy | str | None = None,
    ):
        self.router = router
        self.family = family
        self.plan = plan
        self.constants = constants or CostConstants()
        self.block_bits = int(block_bits)
        self.cache_blocks = int(cache_blocks)
        self.staleness_threshold = float(staleness_threshold)
        self.stats = ServiceStats()
        self._buffers = [_WriteBuffer() for _ in range(router.n_shards)]
        #: Observability.  The per-shard latency histograms are
        #: *always on* — they are what `latency_report()` and
        #: `health_report()` read, replacing the decimated sample
        #: list, at bounded memory and with mergeable percentiles.
        #: Everything else (mirrored counters, gauges, spans) is
        #: guarded on ``self.metrics.enabled``.
        self.metrics = metrics if metrics is not None else get_registry()
        self._lat_hists = [Histogram() for _ in range(router.n_shards)]
        for shard_no, hist in enumerate(self._lat_hists):
            self.metrics.register_histogram("service_lookup_ns", hist, shard=shard_no)
        reg = self.metrics
        self._c_lookups = reg.counter("service_lookups_total")
        self._c_inserts = reg.counter("service_inserts_total")
        self._c_buffer_hits = reg.counter("service_buffer_hits_total")
        self._c_cache_hits = reg.counter("service_cache_hits_total")
        self._c_cache_misses = reg.counter("service_cache_misses_total")
        self._c_cache_fills = reg.counter("service_cache_fills_total")
        self._c_merges = reg.counter("service_merges_total")
        self._c_merged_keys = reg.counter("service_merged_keys_total")
        self._c_resmoothed = reg.counter("service_resmoothed_shards_total")
        self._h_batch = reg.histogram("service_batch_keys")
        self._h_merge_s = reg.histogram("service_merge_seconds")
        self._g_queue = reg.gauge("merge_queue_depth")
        self._g_staleness = [
            reg.gauge("shard_staleness", shard=i) for i in range(router.n_shards)
        ]
        self._g_buffered = [
            reg.gauge("shard_buffered_keys", shard=i) for i in range(router.n_shards)
        ]
        #: Compile-time expected per-key cost (simulated ns) of every
        #: shard — the drift baseline.  Seeded from the plan's Eq. 22
        #: predictions; refreshed whenever a merge rebuilds a shard
        #: from its full key set.
        base = self.constants.base_ns
        costs = plan.predicted_costs
        sizes = [k.size for k in plan.shard_keys]
        self._expected_ns = [
            base + costs[i] / max(sizes[i], 1)
            if i < len(costs) and i < len(sizes) and sizes[i] > 0
            else 0.0
            for i in range(router.n_shards)
        ]
        #: (shard, block_id) -> (sorted keys, values) of the block span.
        #: The lock serialises LRU mutation against the merge thread's
        #: invalidations.
        self._cache: OrderedDict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_lock = threading.Lock()
        #: Bumped (under the lock) whenever a merge invalidates a
        #: shard; read-through fills started before the bump are
        #: discarded instead of caching a pre-merge snapshot.
        self._shard_epochs = [0] * router.n_shards
        self._merge_pool = _MergeWorker() if background_merge else None
        self._merge_futures: list[Future] = []
        self._closed = False
        self._clean_close = True
        #: Durability (see ``repro.store``).  ``_dirty`` shadows the
        #: write buffers with the entries not yet frozen into a run on
        #: disk: flushes drain it, merges flush it first (a merge
        #: folds the buffer into a rebuilt in-memory structure, which
        #: is exactly the state a crash would lose).
        self._store: DurableStore | None = None
        self._flush_threshold = 0
        self._compaction: CompactionStrategy | None = None
        self._dirty: list[dict[int, int]] = [{} for _ in range(router.n_shards)]
        self._dirty_lock = threading.Lock()
        if store is not None:
            self.attach_store(
                store, flush_threshold=flush_threshold, compaction=compaction
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys: np.ndarray | list,
        family: str = "lipp",
        n_shards: int = 4,
        values: np.ndarray | list | None = None,
        mode: str = "equi_depth",
        alpha: float | Sequence[float] | str | None = None,
        executor: ExecutorSpec | str | None = None,
        max_workers: int | None = None,
        constants: CostConstants | None = None,
        cache_blocks: int = 0,
        block_bits: int = 14,
        staleness_threshold: float = 0.1,
        background_merge: bool = False,
        metrics: MetricsRegistry | None = None,
        store: DurableStore | None = None,
        flush_threshold: int = 0,
        compaction: CompactionStrategy | str | None = None,
    ) -> "IndexService":
        """Partition → smooth → build → route, in one call.

        *executor* picks the shard execution backend (an
        :class:`~repro.serving.executor.ExecutorSpec` or one of
        ``"serial"`` / ``"thread"`` / ``"process"``); the old
        ``max_workers=`` thread knob still works behind a deprecation
        warning.
        """
        consts = constants or CostConstants()
        plan = plan_shards(
            keys, n_shards, values=values, mode=mode, alpha=alpha, constants=consts
        )
        shards, __ = build_shard_indexes(plan, family, consts)
        router = ShardRouter(
            shards,
            plan.boundaries,
            max_workers=max_workers,
            executor=executor,
            build_factory=INDEX_FAMILIES[family].build,
        )
        return cls(
            router,
            family,
            plan,
            constants=consts,
            cache_blocks=cache_blocks,
            block_bits=block_bits,
            staleness_threshold=staleness_threshold,
            background_merge=background_merge,
            metrics=metrics,
            store=store,
            flush_threshold=flush_threshold,
            compaction=compaction,
        )

    @classmethod
    def open_snapshot(
        cls,
        store: DurableStore | str,
        constants: CostConstants | None = None,
        executor: ExecutorSpec | str | None = None,
        max_workers: int | None = None,
        cache_blocks: int = 0,
        block_bits: int = 14,
        staleness_threshold: float = 0.1,
        background_merge: bool = False,
        metrics: MetricsRegistry | None = None,
        flush_threshold: int = 0,
        compaction: CompactionStrategy | str | None = None,
    ) -> "IndexService":
        """Recover a service from a durable data directory.

        The inverse of :meth:`snapshot`: the manifest supplies the
        family, shard boundaries, per-shard smoothing α and
        partitioning mode; every shard rebuilds from its base
        snapshot through the family's ``build`` and replays
        outstanding runs through ``bulk_insert_many`` — the same
        vectorised ingest path live merges use — then CSV-smoothable
        shards are re-smoothed with their recorded α.  The store
        stays attached, so subsequent writes keep flushing into the
        same directory.
        """
        if not isinstance(store, DurableStore):
            store = DurableStore(store, metrics=metrics)
        manifest = store.manifest
        if manifest is None:
            raise IndexStateError(
                f"no snapshot to open at {store.data_dir} "
                "(MANIFEST.json missing; build + snapshot() first)"
            )
        consts = constants or CostConstants()
        family_cls = INDEX_FAMILIES[manifest.family]
        bounds = np.iinfo(np.int64)
        shards: list[LearnedIndex | None] = []
        shard_keys: list[np.ndarray] = []
        shard_values: list[np.ndarray] = []
        for shard_no in range(manifest.n_shards):
            shard = store.build_shard(shard_no, family_cls)
            alpha = (
                manifest.alphas[shard_no]
                if shard_no < len(manifest.alphas)
                else None
            )
            if (
                shard is not None
                and alpha is not None
                and alpha > 0.0
                and manifest.family in SMOOTHABLE_FAMILIES
            ):
                apply_csv(adapter_for(shard, consts), CsvConfig(alpha=alpha))
            shards.append(shard)
            pairs = (
                []
                if shard is None
                else shard.range_query(int(bounds.min), int(bounds.max))
            )
            shard_keys.append(
                np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
            )
            shard_values.append(
                np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
            )
        plan = ShardPlan(
            boundaries=np.asarray(manifest.boundaries, dtype=np.int64),
            shard_keys=tuple(shard_keys),
            shard_values=tuple(shard_values),
            alphas=manifest.alphas,
            mode=manifest.mode,
            predicted_costs=tuple(
                predicted_shard_cost(k, consts) for k in shard_keys
            ),
        )
        router = ShardRouter(
            shards,
            plan.boundaries,
            max_workers=max_workers,
            executor=executor,
            build_factory=family_cls.build,
        )
        return cls(
            router,
            manifest.family,
            plan,
            constants=consts,
            cache_blocks=cache_blocks,
            block_bits=block_bits,
            staleness_threshold=staleness_threshold,
            background_merge=background_merge,
            metrics=metrics,
            store=store,
            flush_threshold=flush_threshold,
            compaction=compaction,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def n_keys(self) -> int:
        """Stored keys: merged shard contents plus net-new buffered keys."""
        total = self.router.n_keys
        for shard_no, buffer in enumerate(self._buffers):
            if not len(buffer):
                continue
            shard = self.router.shards[shard_no]
            if shard is None:
                total += len(buffer)
                continue
            bkeys, __ = buffer.arrays()
            batch = shard.lookup_many(bkeys)
            total += int(np.count_nonzero(~batch.found))
        return total

    def size_bytes(self) -> int:
        """Aggregate modelled storage footprint of the shard indexes."""
        return self.router.size_bytes()

    def buffered_counts(self) -> tuple[int, ...]:
        """Unmerged write-buffer entries per shard."""
        return tuple(len(b) for b in self._buffers)

    def executor_report(self):
        """Per-replica worker health (empty unless process-executed)."""
        return self.router.executor_report()

    # ------------------------------------------------------------------
    # Runtime-store hooks (the HTTP front door's persistence points)
    # ------------------------------------------------------------------
    def export_cache_blocks(self) -> list[tuple[int, int, np.ndarray, np.ndarray]]:
        """Snapshot the LRU block cache as ``(shard, block, keys, values)``
        tuples, oldest first — what the runtime store persists at
        shutdown so a restarted server does not begin cache-cold."""
        with self._cache_lock:
            return [
                (shard, block, ckeys.copy(), cvals.copy())
                for (shard, block), (ckeys, cvals) in self._cache.items()
            ]

    def import_cache_blocks(
        self, blocks: Sequence[tuple[int, int, np.ndarray, np.ndarray]]
    ) -> int:
        """Refill the block cache from an exported snapshot.

        Blocks for unknown shards are skipped, LRU order follows the
        given order (last block is most recent), and the cache budget
        still applies.  Returns how many blocks were imported; a
        cache-less service (``cache_blocks == 0``) imports none.
        """
        if self.cache_blocks <= 0:
            return 0
        imported = 0
        with self._cache_lock:
            for shard_no, block_id, ckeys, cvals in blocks:
                if not 0 <= int(shard_no) < self.n_shards:
                    continue
                token = (int(shard_no), int(block_id))
                self._cache[token] = (
                    np.asarray(ckeys, dtype=np.int64),
                    np.asarray(cvals, dtype=np.int64),
                )
                self._cache.move_to_end(token)
                imported += 1
                while len(self._cache) > self.cache_blocks:
                    self._cache.popitem(last=False)
        return imported

    def restore_stats(self, counters: dict) -> None:
        """Overwrite :class:`ServiceStats` fields from persisted totals.

        The runtime store calls this on reopen *after* op-log replay,
        so cumulative operation counters keep counting across
        restarts instead of resetting (unknown keys are ignored)."""
        for name, value in counters.items():
            if hasattr(self.stats, name):
                setattr(self.stats, name, int(value))

    def worker_restarts(self) -> int:
        """Shard workers respawned after a crash or timeout."""
        return self.router.worker_restarts()

    # ------------------------------------------------------------------
    # Durability (repro.store)
    # ------------------------------------------------------------------
    def attach_store(
        self,
        store: DurableStore,
        flush_threshold: int = 0,
        compaction: CompactionStrategy | str | None = None,
    ) -> None:
        """Make *store* this service's durable backing.

        An uninitialised store immediately receives a full
        :meth:`snapshot` (generation 1 bases); an initialised one is
        validated against the live topology and adopted as-is — the
        :meth:`open_snapshot` path, where memory was just rebuilt
        *from* it.  ``flush_threshold > 0`` freezes a shard's
        unflushed writes into a run once that many accumulate (merges
        flush regardless); *compaction* (a strategy or a CLI spec
        like ``"tiered"`` / ``"sortmerge:4"``) runs after every
        flush-on-merge.
        """
        if isinstance(compaction, str):
            compaction = make_strategy(compaction)
        manifest = store.manifest
        if manifest is not None:
            if manifest.family != self.family or manifest.n_shards != self.n_shards:
                raise IndexStateError(
                    f"store at {store.data_dir} holds {manifest.family}/"
                    f"{manifest.n_shards} shards; this service is "
                    f"{self.family}/{self.n_shards}"
                )
        self._store = store
        self._flush_threshold = int(flush_threshold)
        self._compaction = compaction
        # Writes buffered before the attach predate any run on disk.
        with self._dirty_lock:
            for shard_no, buffer in enumerate(self._buffers):
                if len(buffer):
                    self._dirty[shard_no].update(buffer.snapshot())
        if manifest is None:
            self.snapshot()

    def _require_store(self) -> DurableStore:
        if self._store is None:
            raise IndexStateError(
                "no durable store attached (pass store= or call attach_store())"
            )
        return self._store

    @property
    def store(self) -> DurableStore | None:
        """The attached durable store (None when serving memory-only)."""
        return self._store

    def durable_generation(self) -> int:
        """The store's committed generation (0 without a store)."""
        return 0 if self._store is None else self._store.generation

    def _shard_arrays(self, shard_no: int) -> tuple[np.ndarray, np.ndarray]:
        """One shard's full current contents: stored ∪ buffered, last wins."""
        shard = self.router.shards[shard_no]
        bounds = np.iinfo(np.int64)
        pairs = (
            []
            if shard is None
            else shard.range_query(int(bounds.min), int(bounds.max))
        )
        keys = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        vals = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
        buffer = self._buffers[shard_no]
        if len(buffer):
            bkeys, bvals = buffer.arrays()
            keys, vals = dedupe_last_wins(
                np.concatenate([keys, bkeys]), np.concatenate([vals, bvals])
            )
        return keys, vals

    def snapshot(self) -> int:
        """Commit the full service state durably; returns the generation.

        First snapshot (uninitialised store): every shard's current
        contents — stored *and* buffered — become generation-1 base
        files.  Later snapshots: unflushed writes freeze into runs,
        then a full sort-merge compaction folds base + runs into
        fresh bases, so the directory reopens with zero replay.
        """
        store = self._require_store()
        if store.manifest is None:
            arrays = [self._shard_arrays(i) for i in range(self.n_shards)]
            store.initialize(
                self.family,
                [int(b) for b in self.plan.boundaries],
                self.plan.alphas,
                self.plan.mode,
                arrays,
            )
            # The bases hold everything, including what was buffered.
            with self._dirty_lock:
                for dirty in self._dirty:
                    dirty.clear()
        else:
            self.flush_durable()
            self.stats.compactions += store.compact(make_strategy("sortmerge"))
        return store.generation

    def flush_durable(self) -> int:
        """Freeze every shard's unflushed writes into runs; returns gen.

        One call commits one manifest generation covering all shards
        with anything unflushed (a no-op returns the current
        generation).  Flushed entries stay in the write buffers — the
        read overlay is untouched; only their *durability* changes.
        """
        store = self._require_store()
        with self._dirty_lock:
            snap = {
                shard_no: dict(dirty)
                for shard_no, dirty in enumerate(self._dirty)
                if dirty
            }
        if not snap:
            return store.generation
        batches = {}
        total = 0
        for shard_no, entries in snap.items():
            keys = np.fromiter(entries.keys(), dtype=np.int64, count=len(entries))
            vals = np.fromiter(entries.values(), dtype=np.int64, count=len(entries))
            batches[shard_no] = (keys, vals)
            total += len(entries)
        generation = store.append_runs(batches)
        self.stats.flushes += 1
        self.stats.flushed_keys += total
        # Drop exactly what was flushed: a write landing mid-flush
        # stays dirty for the next one (same shape as drop_merged).
        with self._dirty_lock:
            for shard_no, entries in snap.items():
                dirty = self._dirty[shard_no]
                for key, value in entries.items():
                    if dirty.get(key) == value:
                        del dirty[key]
        return generation

    def _flush_shard_durable(self, shard_no: int) -> None:
        """Flush one shard's unflushed writes (threshold / merge path)."""
        store = self._store
        if store is None:
            return
        with self._dirty_lock:
            entries = dict(self._dirty[shard_no])
        if not entries:
            return
        keys = np.fromiter(entries.keys(), dtype=np.int64, count=len(entries))
        vals = np.fromiter(entries.values(), dtype=np.int64, count=len(entries))
        store.append_run(shard_no, keys, vals)
        self.stats.flushes += 1
        self.stats.flushed_keys += len(entries)
        with self._dirty_lock:
            dirty = self._dirty[shard_no]
            for key, value in entries.items():
                if dirty.get(key) == value:
                    del dirty[key]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup_many(self, keys: np.ndarray | list) -> BatchQueryStats:
        """Batched lookups through buffer → cache → shards."""
        q = _as_query_array(keys)
        m = int(q.size)
        self.stats.n_lookups += m
        if self.metrics.enabled:
            self._c_lookups.inc(m)
            self._h_batch.observe(m)
        shard_ids = self.router.shard_of(q)
        found = np.zeros(m, dtype=bool)
        values = np.zeros(m, dtype=np.int64)
        levels = np.zeros(m, dtype=np.int64)
        steps = np.zeros(m, dtype=np.int64)
        extra_steps = np.zeros(m, dtype=np.int64)
        pending = np.ones(m, dtype=bool)

        # 1. Write-buffer overlay.
        for shard_no, buffer in enumerate(self._buffers):
            if not len(buffer):
                continue
            mask = pending & (shard_ids == shard_no)
            if not np.any(mask):
                continue
            bkeys, bvals = buffer.arrays()
            probe = _memtable_steps(len(buffer))
            sub = q[mask]
            pos = np.searchsorted(bkeys, sub)
            hit = np.zeros(sub.size, dtype=bool)
            in_range = pos < bkeys.size
            hit[in_range] = bkeys[pos[in_range]] == sub[in_range]
            idx = np.nonzero(mask)[0]
            hit_idx = idx[hit]
            found[hit_idx] = True
            values[hit_idx] = bvals[pos[hit]]
            steps[hit_idx] = probe
            pending[hit_idx] = False
            self.stats.buffer_hits += int(hit_idx.size)
            if self.metrics.enabled:
                self._c_buffer_hits.inc(int(hit_idx.size))
            # Buffer misses pay the failed memtable probe on top of
            # whatever the cache/shard path charges.
            extra_steps[idx[~hit]] += probe

        # 2. LRU block cache.
        if self.cache_blocks > 0 and np.any(pending):
            self._cache_pass(q, shard_ids, pending, found, values, levels, steps)

        # 3. Scatter/gather for the remainder.
        if np.any(pending):
            routed = self.router.lookup_many(q[pending])
            idx = np.nonzero(pending)[0]
            found[idx] = routed.gathered.found
            values[idx] = routed.gathered.values
            levels[idx] = routed.gathered.levels
            steps[idx] = routed.gathered.search_steps
            if self.cache_blocks > 0:
                self._fill_blocks(q[pending], shard_ids[pending])

        steps += extra_steps
        batch = BatchQueryStats(
            keys=q, found=found, values=values, levels=levels, search_steps=steps
        )
        self._record_latency(shard_ids, batch)
        return batch

    def lookup(self, key: int) -> int | None:
        """Single-key convenience wrapper over :meth:`lookup_many`."""
        batch = self.lookup_many(np.asarray([int(key)], dtype=np.int64))
        return int(batch.values[0]) if batch.found[0] else None

    def _cache_pass(
        self,
        q: np.ndarray,
        shard_ids: np.ndarray,
        pending: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        levels: np.ndarray,
        steps: np.ndarray,
    ) -> None:
        """Serve every pending query whose block is cached (hits *and*
        definite misses — a cached block covers its whole span).

        Grouped by (shard, block) token: one cache probe and one
        vectorised ``searchsorted`` per distinct block, not per query.
        """
        blocks = q >> self.block_bits
        idx = np.nonzero(pending)[0]
        # Group the pending queries by block token (order within a
        # group is irrelevant: results go back positionally).  The
        # composite is collision-free: shard ids live in [0, K).
        tokens = blocks[idx] * np.int64(self.n_shards) + shard_ids[idx]
        grouping = np.argsort(tokens, kind="stable")
        starts = np.concatenate(
            [[0], np.nonzero(np.diff(tokens[grouping]))[0] + 1, [idx.size]]
        )
        for lo, hi in zip(starts[:-1], starts[1:]):
            group = idx[grouping[lo:hi]]
            first = int(group[0])
            token = (int(shard_ids[first]), int(blocks[first]))
            with self._cache_lock:
                entry = self._cache.get(token)
                if entry is not None:
                    self._cache.move_to_end(token)
            if entry is None:
                self.stats.cache_misses += int(group.size)
                if self.metrics.enabled:
                    self._c_cache_misses.inc(int(group.size))
                continue
            ckeys, cvals = entry
            sub = q[group]
            pos = np.searchsorted(ckeys, sub)
            hit = np.zeros(sub.size, dtype=bool)
            in_range = pos < ckeys.size
            hit[in_range] = ckeys[pos[in_range]] == sub[in_range]
            found[group] = hit
            values[group[hit]] = cvals[pos[hit]]
            levels[group] = 0
            steps[group] = 1
            pending[group] = False
            self.stats.cache_hits += int(group.size)
            if self.metrics.enabled:
                self._c_cache_hits.inc(int(group.size))

    def _fill_blocks(self, q: np.ndarray, shard_ids: np.ndarray) -> None:
        """Read-through fill of the uncached blocks a batch touched.

        At most ``cache_blocks`` fills per batch, hottest blocks (most
        queries in this batch) first — filling every distinct block of
        a wide batch would evict each fill before it could ever be hit
        and pay one ``range_query`` per query for nothing.
        """
        blocks = q >> self.block_bits
        span = np.int64(1) << self.block_bits
        touch_counts: dict[tuple[int, int], int] = {}
        for s, b in zip(shard_ids.tolist(), blocks.tolist()):
            token = (int(s), int(b))
            touch_counts[token] = touch_counts.get(token, 0) + 1
        hottest = sorted(touch_counts, key=lambda t: (-touch_counts[t], t))
        for token in hottest[: self.cache_blocks]:
            shard_no, block_id = token
            with self._cache_lock:
                if token in self._cache:
                    continue
                epoch = self._shard_epochs[shard_no]
            shard = self.router.shards[shard_no]
            low = int(block_id * span)
            high = int(low + span - 1)
            pairs = [] if shard is None else shard.range_query(low, high)
            ckeys = np.asarray([p[0] for p in pairs], dtype=np.int64)
            cvals = np.asarray([p[1] for p in pairs], dtype=np.int64)
            with self._cache_lock:
                if self._shard_epochs[shard_no] != epoch:
                    continue  # a merge landed mid-scan; block is stale
                self._cache[token] = (ckeys, cvals)
                self._cache.move_to_end(token)
                while len(self._cache) > self.cache_blocks:
                    self._cache.popitem(last=False)
            self.stats.cache_fills += 1
            if self.metrics.enabled:
                self._c_cache_fills.inc()

    def _invalidate_blocks(self, keys: np.ndarray, shard_ids: np.ndarray) -> None:
        blocks = keys >> self.block_bits
        tokens = {(int(s), int(b)) for s, b in zip(shard_ids.tolist(), blocks.tolist())}
        with self._cache_lock:
            for token in tokens:
                self._cache.pop(token, None)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def insert_many(
        self,
        keys: np.ndarray | list,
        values: np.ndarray | list | None = None,
    ) -> None:
        """Absorb a write batch into the per-shard buffers.

        Buffered writes are immediately visible to reads (the overlay
        in :meth:`lookup_many`); shards whose staleness crosses the
        threshold are merged + re-smoothed.
        """
        arr, vals = _as_batch_kv(keys, values)
        if arr.size == 0:
            return
        self.stats.n_inserts += int(arr.size)
        instrumented = self.metrics.enabled
        if instrumented:
            self._c_inserts.inc(int(arr.size))
        shard_ids, order, offsets = self.router.group_by_shard(arr)
        if self.cache_blocks > 0:
            self._invalidate_blocks(arr, shard_ids)
        for shard_no in range(self.n_shards):
            lo, hi = int(offsets[shard_no]), int(offsets[shard_no + 1])
            if lo == hi:
                continue
            run = order[lo:hi]
            self._buffers[shard_no].put_run(arr[run], vals[run])
            if self._store is not None:
                with self._dirty_lock:
                    self._dirty[shard_no].update(
                        zip(arr[run].tolist(), vals[run].tolist())
                    )
                    dirty_n = len(self._dirty[shard_no])
                if 0 < self._flush_threshold <= dirty_n:
                    self._flush_shard_durable(shard_no)
            staleness = self._staleness(shard_no)
            if instrumented:
                self._g_staleness[shard_no].set(staleness)
                self._g_buffered[shard_no].set(len(self._buffers[shard_no]))
            if staleness > self.staleness_threshold:
                self._schedule_merge(shard_no)

    def _staleness(self, shard_no: int) -> float:
        buffered = len(self._buffers[shard_no])
        shard = self.router.shards[shard_no]
        stored = shard.n_keys if shard is not None else 0
        return buffered / max(stored, 1)

    def _schedule_merge(self, shard_no: int) -> None:
        if self._merge_pool is None:
            self._merge_shard(shard_no)
        else:
            self._merge_futures.append(
                self._merge_pool.submit(self._merge_shard, shard_no)
            )
            if self.metrics.enabled:
                self._g_queue.set(self.merge_queue_depth())

    def merge_queue_depth(self) -> int:
        """Scheduled background merges not yet completed."""
        return sum(1 for f in self._merge_futures if not f.done())

    def _merge_shard(self, shard_no: int) -> None:
        """Merge one shard's buffer into its index and re-smooth.

        Synchronous merges on updatable families absorb the buffer
        in-place through ``insert_many``; static families (pgm, rmi)
        — and *every* background merge — rebuild a fresh index from
        the merged key set and atomically swap it in, so concurrent
        readers only ever traverse a fully built structure (they see
        the old shard plus the still-buffered writes until the swap).
        CSV families with a per-shard α are re-smoothed afterwards —
        the background counterpart of the paper's one-shot
        preprocessing.
        """
        buffer = self._buffers[shard_no]
        merged_entries = buffer.snapshot()
        if not merged_entries:
            return
        with trace(
            "merge_shard", registry=self.metrics,
            shard=shard_no, keys=len(merged_entries),
        ):
            self._run_merge(shard_no, buffer, merged_entries)

    def _run_merge(
        self, shard_no: int, buffer: _WriteBuffer, merged_entries: dict[int, int]
    ) -> None:
        instrumented = self.metrics.enabled
        merge_start = time.perf_counter() if instrumented else 0.0
        # Flush-on-merge: the buffer is about to fold into a rebuilt
        # in-memory structure — exactly the state a crash would lose —
        # so its unflushed entries become a durable run first.
        self._flush_shard_durable(shard_no)
        bkeys = np.asarray(sorted(merged_entries), dtype=np.int64)
        bvals = np.asarray([merged_entries[k] for k in bkeys.tolist()], dtype=np.int64)
        shard = self.router.shards[shard_no]
        cls = INDEX_FAMILIES[self.family]
        in_place = (
            shard is not None
            and self.family in UPDATABLE_FAMILIES
            and self._merge_pool is None
        )
        #: Full key set of a rebuilt shard — refreshes the drift
        #: baseline (compile-time expected cost).  In-place merges keep
        #: the previous baseline: the structure is incrementally
        #: updated, not recompiled.
        expected_keys: np.ndarray | None = None
        if shard is None:
            merged = cls.build(bkeys, bvals)
            expected_keys = bkeys
        elif in_place:
            # Drain the buffer through the vectorised bulk-ingest path:
            # the tree backends sorted-merge-rebuild their touched
            # nodes/subtrees in one sweep instead of descending once
            # per buffered key — this is what lifts the LIPP/SALI
            # merge ceiling the ROADMAP flags.
            shard.bulk_insert_many(bkeys, bvals)
            merged = shard
        else:
            # One ordered scan recovers the stored pairs — cheaper
            # than probing the index once per stored key.
            bounds = np.iinfo(np.int64)
            pairs = shard.range_query(int(bounds.min), int(bounds.max))
            old_keys = np.fromiter(
                (p[0] for p in pairs), dtype=np.int64, count=len(pairs)
            )
            old_vals = np.fromiter(
                (p[1] for p in pairs), dtype=np.int64, count=len(pairs)
            )
            merged_keys, merged_vals = dedupe_last_wins(
                np.concatenate([old_keys, bkeys]),
                np.concatenate([old_vals, bvals]),
            )
            merged = cls.build(merged_keys, merged_vals)
            expected_keys = merged_keys
        alpha = (
            self.plan.alphas[shard_no]
            if shard_no < len(self.plan.alphas)
            else None
        )
        resmoothed = (
            alpha is not None and alpha > 0.0 and self.family in SMOOTHABLE_FAMILIES
        )
        if resmoothed:
            apply_csv(adapter_for(merged, self.constants), CsvConfig(alpha=alpha))
            self.stats.resmoothed_shards += 1
        # Tree backends with a compiled flat lookup view pay its
        # (re)compile before the swap, not on the first query after it.
        prewarm = getattr(merged, "prewarm_flat", None)
        if prewarm is not None:
            prewarm()
        self.router.replace_shard(shard_no, merged)
        if self.cache_blocks > 0:
            with self._cache_lock:
                self._shard_epochs[shard_no] += 1
                for token in [t for t in self._cache if t[0] == shard_no]:
                    self._cache.pop(token, None)
        self.stats.merges += 1
        self.stats.merged_keys += len(merged_entries)
        # Drop exactly what was merged: writes that landed mid-merge
        # stay buffered for the next one.
        buffer.drop_merged(merged_entries)
        # Staleness crossed the merge threshold, so the on-disk run
        # stack just grew too — let the compactor fold it back down.
        if self._store is not None and self._compaction is not None:
            self.stats.compactions += self._store.compact(
                self._compaction, shard=shard_no
            )
        if expected_keys is not None and expected_keys.size:
            self._expected_ns[shard_no] = self.constants.base_ns + (
                predicted_shard_cost(expected_keys, self.constants)
                / float(expected_keys.size)
            )
        if instrumented:
            self._h_merge_s.observe(time.perf_counter() - merge_start)
            self._c_merges.inc()
            self._c_merged_keys.inc(len(merged_entries))
            if resmoothed:
                self._c_resmoothed.inc()
            self._g_queue.set(self.merge_queue_depth())
            self._g_staleness[shard_no].set(self._staleness(shard_no))
            self._g_buffered[shard_no].set(len(buffer))

    def flush(self) -> None:
        """Merge every non-empty buffer now (and wait for background merges)."""
        self.drain()
        for shard_no, buffer in enumerate(self._buffers):
            if len(buffer):
                self._merge_shard(shard_no)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for scheduled background merges, optionally bounded.

        Returns True once every scheduled merge has finished.  With a
        *timeout*, unfinished merges stay scheduled (a later drain can
        still collect them) and False is returned instead of blocking
        forever.  Exceptions raised by completed merges propagate.
        """
        if not self._merge_futures:
            return True
        done, not_done = futures_wait(self._merge_futures, timeout=timeout)
        self._merge_futures = list(not_done)
        # Retrieve every completed future's outcome before raising, so
        # no failure is silently dropped; the first error propagates
        # with any others attached as context.
        errors = [exc for f in done if (exc := f.exception()) is not None]
        if errors:
            if len(errors) > 1:
                errors[0].__notes__ = getattr(errors[0], "__notes__", []) + [
                    f"(+{len(errors) - 1} further background merge failure(s))"
                ]
            raise errors[0]
        return not not_done

    # ------------------------------------------------------------------
    # Range path
    # ------------------------------------------------------------------
    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """Gathered range scan, overlaid with in-range buffered writes."""
        merged = dict(self.router.range_query(low, high))
        for buffer in self._buffers:
            if not len(buffer):
                continue
            bkeys, bvals = buffer.arrays()
            lo = int(np.searchsorted(bkeys, int(low), side="left"))
            hi = int(np.searchsorted(bkeys, int(high), side="right"))
            merged.update(zip(bkeys[lo:hi].tolist(), bvals[lo:hi].tolist()))
        return sorted(merged.items())

    # ------------------------------------------------------------------
    # Latency accounting
    # ------------------------------------------------------------------
    def _record_latency(self, shard_ids: np.ndarray, batch: BatchQueryStats) -> None:
        ns = batch.simulated_ns(self.constants)
        for shard_no in np.unique(shard_ids).tolist():
            self._lat_hists[shard_no].observe_array(ns[shard_ids == shard_no])

    def latency_report(self) -> LatencyReport:
        """Per-shard p50/p90/p99/avg of the simulated lookup latencies.

        ``n_queries`` counts every query served.  The averages are
        exact; the percentiles come from the always-on fixed-layout
        log-bucket histograms (within one relative bucket width,
        ``2**(1/4)``, of the exact order statistic), and the ``total``
        row is the *merge* of the per-shard histograms — the same
        aggregation that works across processes.
        """
        rows = []
        total_hist = Histogram()
        for shard_no, hist in enumerate(self._lat_hists):
            if hist.count == 0:
                continue
            rows.append(_latency_row(shard_no, hist))
            total_hist.merge(hist)
        if not rows:
            return LatencyReport(shards=(), total=None)
        return LatencyReport(shards=tuple(rows), total=_latency_row(-1, total_hist))

    def health_report(self) -> HealthReport:
        """Service-wide health: staleness, drift, and imbalance signals.

        Per shard: key/buffer volume, staleness (the merge trigger
        ratio), observed latency moments from the always-on
        histograms, the compile-time expected per-key cost (Eq. 22,
        refreshed when a merge rebuilds the shard), and the drift of
        observed mean over that expectation.  Aggregates: merge-queue
        depth, cache/buffer hit rates, and the observed per-shard cost
        imbalance (max/mean of shard means — the runtime counterpart
        of the partitioner's predicted ``cost_imbalance``).
        """
        shards = []
        shard_means = []
        for shard_no, hist in enumerate(self._lat_hists):
            shard = self.router.shards[shard_no]
            staleness = self._staleness(shard_no)
            expected = self._expected_ns[shard_no]
            drift = hist.mean / expected - 1.0 if expected > 0 and hist.count else 0.0
            if hist.count:
                shard_means.append(hist.mean)
            shards.append(
                ShardHealth(
                    shard=shard_no,
                    n_keys=shard.n_keys if shard is not None else 0,
                    buffered=len(self._buffers[shard_no]),
                    staleness=staleness,
                    queries=hist.count,
                    avg_ns=hist.mean,
                    p50_ns=hist.percentile(50),
                    p90_ns=hist.percentile(90),
                    p99_ns=hist.percentile(99),
                    expected_ns=expected,
                    drift=drift,
                    status=shard_status(staleness, self.staleness_threshold, drift),
                )
            )
        imbalance = (
            max(shard_means) / (sum(shard_means) / len(shard_means))
            if shard_means
            else 0.0
        )
        status = "ok"
        if any(s.status != "ok" for s in shards) or imbalance > IMBALANCE_WARN:
            status = "warn"
        replicas = self.router.executor_report()
        if any(not r.alive for r in replicas):
            status = "warn"
        return HealthReport(
            shards=tuple(shards),
            merge_queue_depth=self.merge_queue_depth(),
            merges=self.stats.merges,
            cache_hit_rate=self.stats.cache_hit_rate,
            buffer_hit_rate=(
                self.stats.buffer_hits / self.stats.n_lookups
                if self.stats.n_lookups
                else 0.0
            ),
            cost_imbalance=imbalance,
            status=status,
            replicas=replicas,
            worker_restarts=self.router.worker_restarts(),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = DEFAULT_CLOSE_TIMEOUT) -> bool:
        """Finish background merges, then tear down executor workers.

        Ordering is load-bearing: scheduled merges are drained and the
        merge worker joined *before* ``router.close()`` stops the
        executor — a background merge republishes its shard through
        the router, so tearing down a process pool first would race a
        dying worker set (the executor masks it by refusing IPC after
        close, but the merge's republish would then be lost).

        Idempotent: repeated calls are no-ops returning the first
        call's outcome.  The whole close — draining scheduled merges
        plus joining the worker — shares one *timeout* budget (None
        waits indefinitely): a merge that hangs past it is abandoned
        on its daemon thread — the close returns False and the process
        can still exit — instead of wedging the ``serve`` CLI.
        Returns True when everything drained cleanly; a close that
        raises (a background merge failed) reports False thereafter.
        """
        if self._closed:
            return self._clean_close
        self._closed = True
        self._clean_close = False
        deadline = None if timeout is None else time.monotonic() + timeout
        clean = False
        error: BaseException | None = None
        try:
            clean = self.drain(timeout=timeout)
        except BaseException as exc:  # keep draining order; re-raise below
            error = exc
        if self._store is not None:
            # Whatever is still buffered becomes a durable run, so a
            # clean shutdown never needs the HTTP op log to replay.
            try:
                self.flush_durable()
            except BaseException as exc:
                clean = False
                if error is None:
                    error = exc
        if self._merge_pool is not None:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            clean = self._merge_pool.shutdown(timeout=remaining) and clean
            self._merge_pool = None
        # Only now — with no merge able to start — stop the executor.
        self.router.close()
        self._clean_close = clean
        if error is not None:
            raise error
        return clean

    def __enter__(self) -> "IndexService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
