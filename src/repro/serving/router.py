"""Vectorised scatter/gather routing over range-partitioned shards.

One ``np.searchsorted`` against the boundary array assigns every query
of a batch to its shard; a stable argsort groups the batch into
per-shard contiguous runs; each run goes down its shard's
``lookup_many`` / ``insert_many``; and the per-shard
:class:`~repro.indexes.base.BatchQueryStats` are gathered back into
the caller's positional order.  *How* the per-shard runs execute is
the :class:`~repro.serving.executor.ExecutorSpec`: inline
(``"serial"``), on a shared ``ThreadPoolExecutor`` (``"thread"``), or
on replicated shared-memory worker processes (``"process"`` — see
:mod:`~repro.serving.executor`).  The gather is *exact* for every
executor: entry ``i`` of the gathered batch is bit-identical to
routing ``keys[i]`` alone and looking it up in its shard.

In process mode the router keeps its in-process shard objects as the
*authoritative* copies: writes (``insert_many``, ``replace_shard``)
apply there and the shard is republished to the worker replicas;
reads fan out to the replicas; ``range_query`` and ``iter_keys`` scan
the authoritative copies directly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.exceptions import IndexStateError
from ..indexes.base import (
    BatchQueryStats,
    LearnedIndex,
    _as_batch_kv,
    _as_query_array,
    dedupe_last_wins,
)
from ..obs.health import ReplicaHealth
from ..obs.metrics import get_registry
from .executor import ExecutorSpec, ProcessShardExecutor, resolve_executor

__all__ = ["RoutedBatch", "ShardRouter", "dedupe_last_wins"]


@dataclass(frozen=True)
class RoutedBatch:
    """Result of one routed lookup batch.

    Attributes:
        gathered: the batch stats in the caller's query order — what a
            monolithic ``lookup_many`` would have returned for
            found/values, with levels/steps as reported by the shard
            that served each query.
        shard_ids: shard serving each query, parallel to the batch.
        per_shard: each shard's own BatchQueryStats (None where the
            shard received no queries), in shard order — the inputs to
            per-shard latency accounting.
    """

    gathered: BatchQueryStats
    shard_ids: np.ndarray
    per_shard: tuple[BatchQueryStats | None, ...]


class ShardRouter:
    """Scatter/gather router over a list of shard indexes.

    ``shards[i]`` may be None (an empty shard): lookups routed there
    miss with zero traversal cost, and inserts materialise the shard
    through *build_factory* on first write.
    """

    def __init__(
        self,
        shards: Sequence[LearnedIndex | None],
        boundaries: np.ndarray,
        max_workers: int | None = None,
        build_factory: Callable[[np.ndarray, np.ndarray], LearnedIndex] | None = None,
        executor: ExecutorSpec | str | None = None,
        threaded: bool | None = None,
    ):
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.size != len(shards) - 1:
            raise IndexStateError(
                f"{len(shards)} shards need {len(shards) - 1} boundaries, "
                f"got {boundaries.size}"
            )
        if boundaries.size > 1 and np.any(np.diff(boundaries) < 0):
            raise IndexStateError("shard boundaries must be non-decreasing")
        self._shards = list(shards)
        self._boundaries = boundaries
        self._build_factory = build_factory
        #: ``executor=`` is the API; ``max_workers=`` / ``threaded=``
        #: are the deprecated PR-2 knobs, mapped (with a one-time
        #: warning) onto a thread spec by :func:`resolve_executor`.
        self._spec = resolve_executor(
            executor, max_workers=max_workers, threaded=threaded
        )
        self._executor: ThreadPoolExecutor | None = None
        self._proc: ProcessShardExecutor | None = None
        if self._spec.kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=min(
                    self._spec.resolved_workers(len(shards)), max(len(shards), 1)
                ),
                thread_name_prefix="shard",
            )
        elif self._spec.kind == "process":
            self._proc = ProcessShardExecutor(self._spec, len(shards))
            try:
                for shard_no, shard in enumerate(self._shards):
                    if shard is not None:
                        self._proc.publish(shard_no, shard)
            except BaseException:
                self._proc.close()
                raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[LearnedIndex | None, ...]:
        return tuple(self._shards)

    @property
    def boundaries(self) -> np.ndarray:
        return self._boundaries.copy()

    @property
    def executor_spec(self) -> ExecutorSpec:
        """The resolved executor configuration serving this router."""
        return self._spec

    @property
    def threaded(self) -> bool:
        return self._executor is not None

    @property
    def process_based(self) -> bool:
        return self._proc is not None

    def executor_report(self) -> tuple[ReplicaHealth, ...]:
        """Per-replica health rows (empty for serial/thread executors)."""
        return self._proc.health() if self._proc is not None else ()

    def worker_restarts(self) -> int:
        """Worker processes respawned after a crash or timeout."""
        return self._proc.restarts_total() if self._proc is not None else 0

    def shm_segment_names(self) -> tuple[str, ...]:
        """Live shared-memory segment names (lifecycle tests)."""
        return self._proc.segment_names() if self._proc is not None else ()

    @property
    def n_keys(self) -> int:
        return sum(s.n_keys for s in self._shards if s is not None)

    def size_bytes(self) -> int:
        """Aggregate modelled storage footprint of every shard."""
        return sum(s.size_bytes() for s in self._shards if s is not None)

    def shard_of(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorised shard assignment: one searchsorted for the batch."""
        return np.searchsorted(self._boundaries, _as_query_array(keys), side="right")

    # ------------------------------------------------------------------
    # Scatter/gather
    # ------------------------------------------------------------------
    def group_by_shard(
        self, keys: np.ndarray | list
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group a batch into per-shard contiguous runs.

        Returns ``(shard_ids, order, offsets)``: *order* stably sorts
        the batch by shard (preserving batch order within a shard —
        what makes insert last-wins semantics survive routing), and
        ``order[offsets[s]:offsets[s+1]]`` are the positions routed to
        shard ``s``.  The service's write path reuses this grouping
        for its buffers.
        """
        shard_ids = self.shard_of(keys)
        order = np.argsort(shard_ids, kind="stable")
        counts = np.bincount(shard_ids, minlength=self.n_shards)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        return shard_ids, order, offsets

    def _map_shards(self, tasks: list[tuple[int, Callable[[], object]]]) -> dict[int, object]:
        """Run one closure per shard, on the pool when configured."""
        if self._executor is None or len(tasks) <= 1:
            return {shard: task() for shard, task in tasks}
        futures = {shard: self._executor.submit(task) for shard, task in tasks}
        return {shard: future.result() for shard, future in futures.items()}

    def lookup_many(self, keys: np.ndarray | list) -> RoutedBatch:
        """Routed batched lookups with exact positional gather."""
        q = _as_query_array(keys)
        m = int(q.size)
        shard_ids, order, offsets = self.group_by_shard(q)
        found = np.zeros(m, dtype=bool)
        values = np.zeros(m, dtype=np.int64)
        levels = np.zeros(m, dtype=np.int64)
        steps = np.zeros(m, dtype=np.int64)
        per_shard: list[BatchQueryStats | None] = [None] * self.n_shards

        tasks = []
        for shard_no in range(self.n_shards):
            lo, hi = int(offsets[shard_no]), int(offsets[shard_no + 1])
            if lo == hi:
                continue
            positions = order[lo:hi]
            shard = self._shards[shard_no]
            if shard is None:
                # Empty shard: a definite miss with no structure to
                # traverse (levels=0, steps=0 — only base_ns accrues).
                per_shard[shard_no] = BatchQueryStats(
                    keys=q[positions],
                    found=np.zeros(positions.size, dtype=bool),
                    values=np.zeros(positions.size, dtype=np.int64),
                    levels=np.zeros(positions.size, dtype=np.int64),
                    search_steps=np.zeros(positions.size, dtype=np.int64),
                )
                continue
            tasks.append((shard_no, (lambda s=shard, p=positions: s.lookup_many(q[p]))))
        if self._proc is not None and tasks:
            # Process fan-out: ship each shard's key slice to a replica
            # worker; the response is the shard's BatchQueryStats as
            # bare arrays (the keys we already hold).
            slices = {
                shard_no: q[order[int(offsets[shard_no]) : int(offsets[shard_no + 1])]]
                for shard_no, __ in tasks
            }
            for shard_no, arrays in self._proc.lookup(list(slices.items())).items():
                per_shard[shard_no] = BatchQueryStats(
                    keys=slices[shard_no],
                    found=arrays[0],
                    values=arrays[1],
                    levels=arrays[2],
                    search_steps=arrays[3],
                )
        else:
            for shard_no, batch in self._map_shards(tasks).items():
                per_shard[shard_no] = batch

        for shard_no, batch in enumerate(per_shard):
            if batch is None:
                continue
            lo, hi = int(offsets[shard_no]), int(offsets[shard_no + 1])
            positions = order[lo:hi]
            found[positions] = batch.found
            values[positions] = batch.values
            levels[positions] = batch.levels
            steps[positions] = batch.search_steps

        gathered = BatchQueryStats(
            keys=q, found=found, values=values, levels=levels, search_steps=steps
        )
        reg = get_registry()
        if reg.enabled:
            reg.counter("router_batches_total").inc()
            reg.counter("router_routed_keys_total").inc(m)
            reg.histogram("router_batch_keys").observe(m)
            # Scatter width: shards this batch actually touched — the
            # fan-out the gather pays for.
            reg.histogram("router_scatter_shards").observe(
                sum(1 for b in per_shard if b is not None)
            )
        return RoutedBatch(
            gathered=gathered, shard_ids=shard_ids, per_shard=tuple(per_shard)
        )

    def insert_many(
        self,
        keys: np.ndarray | list,
        values: np.ndarray | list | None = None,
    ) -> np.ndarray:
        """Routed batched inserts; returns the per-shard insert counts.

        Within a shard the batch order is preserved (stable grouping),
        so duplicate keys keep the sequential last-wins semantics.
        Inserting into an empty shard builds it from the run's sorted,
        deduplicated keys via the router's *build_factory*.
        """
        arr, vals = _as_batch_kv(keys, values)
        __, order, offsets = self.group_by_shard(arr)
        counts = np.zeros(self.n_shards, dtype=np.int64)
        tasks = []
        touched: list[int] = []
        for shard_no in range(self.n_shards):
            lo, hi = int(offsets[shard_no]), int(offsets[shard_no + 1])
            if lo == hi:
                continue
            positions = order[lo:hi]
            counts[shard_no] = positions.size
            touched.append(shard_no)
            shard = self._shards[shard_no]
            if shard is None:
                self._shards[shard_no] = self._materialise(
                    arr[positions], vals[positions]
                )
                continue
            tasks.append(
                (
                    shard_no,
                    (lambda s=shard, p=positions: s.insert_many(arr[p], vals[p])),
                )
            )
        if self._proc is not None:
            # Writes apply to the authoritative in-process shards, then
            # each touched shard is republished so the replicas serve
            # the new state.  (The service's write path buffers instead
            # and republishes only on merge — this direct path trades
            # write throughput for simplicity.)
            for __, task in tasks:
                task()
            for shard_no in touched:
                self._proc.publish(shard_no, self._shards[shard_no])
        else:
            self._map_shards(tasks)
        reg = get_registry()
        if reg.enabled:
            reg.counter("router_inserted_keys_total").inc(int(arr.size))
        return counts

    def _materialise(self, run_keys: np.ndarray, run_values: np.ndarray) -> LearnedIndex:
        """Build an empty shard from its first insert run (last wins)."""
        if self._build_factory is None:
            raise IndexStateError(
                "cannot insert into an empty shard without a build_factory"
            )
        return self._build_factory(*dedupe_last_wins(run_keys, run_values))

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """Gathered range scan across every shard overlapping the range."""
        low = int(low)
        high = int(high)
        if low > high:
            return []
        first = int(np.searchsorted(self._boundaries, low, side="right"))
        last = int(np.searchsorted(self._boundaries, high, side="right"))
        out: list[tuple[int, int]] = []
        for shard_no in range(first, last + 1):
            shard = self._shards[shard_no]
            if shard is not None:
                out.extend(shard.range_query(low, high))
        return out

    def iter_keys(self):
        """Every stored key in ascending order (shards are disjoint ranges)."""
        for shard in self._shards:
            if shard is not None:
                yield from shard.iter_keys()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def replace_shard(self, shard_no: int, index: LearnedIndex | None) -> None:
        """Swap one shard's index (the service's merge path).

        In process mode the new index is republished to the shard's
        replicas (or the publication withdrawn when *index* is None);
        a router whose executor is already closed just swaps locally,
        so a straggling background merge landing during shutdown can
        not crash against dead workers.
        """
        shard_no = int(shard_no)
        self._shards[shard_no] = index
        if self._proc is not None and not self._proc.closed:
            if index is None:
                self._proc.withdraw(shard_no)
            else:
                self._proc.publish(shard_no, index)

    def close(self) -> None:
        """Shut the worker pool / processes down (no-op when serial)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._proc is not None:
            self._proc.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
