"""Executor specs and the process-parallel shard-serving backend.

:class:`ExecutorSpec` is the typed knob the serving API takes in place
of the old ``threaded=`` / ``max_workers=`` booleans: ``"serial"``
runs shard work inline, ``"thread"`` fans out on a shared thread pool
(the GIL bounds real scaling), and ``"process"`` runs shard replicas
in worker *processes* that serve lookups from shared-memory index
buffers — the backend whose throughput actually scales with cores.

Process mode (:class:`ProcessShardExecutor`):

* Every shard is published once (:func:`~repro.serving.shm.
  publish_index`): pickled structure plus one shared-memory segment
  holding the struct-of-arrays buffers.  Each of the shard's
  ``n_replicas`` workers attaches zero-copy read-only views.
* The router speaks a batch IPC protocol over one duplex pipe per
  worker: a request is ``("lookup", req_id, shard, keys)``, a response
  the per-shard :class:`~repro.indexes.base.BatchQueryStats` arrays.
  Calls are timeout-bounded (``spec.timeout_s``).
* Reads fan out to the *least-loaded live replica* of each shard.  A
  worker that dies or times out mid-batch is killed and respawned (the
  current publications are replayed into the fresh process) and the
  affected slices retried on another replica — bit-identical answers,
  because every replica serves the same published bytes.  Writes never
  reach workers: the router applies them to its authoritative
  in-process shards and republishes, and the service's memtable
  overlay covers the window in between.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import warnings
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import TYPE_CHECKING

import numpy as np

from ..core.exceptions import IndexStateError
from ..obs.health import ReplicaHealth
from ..obs.metrics import get_registry
from .shm import ShardSegment, attach_segment_index, publish_index

if TYPE_CHECKING:
    from ..indexes.base import LearnedIndex

__all__ = ["ExecutorSpec", "ExecutorError", "ProcessShardExecutor", "resolve_executor"]

EXECUTOR_KINDS = ("serial", "thread", "process")

#: Environment override of the multiprocessing start method
#: ("fork" | "spawn" | "forkserver"); defaults to fork where available
#: (Linux — cheap worker startup), spawn elsewhere (macOS default).
MP_START_ENV = "REPRO_MP_START"

#: Total attempts a routed slice gets before the batch call fails
#: (first try plus retries on other replicas / respawned workers).
_MAX_ATTEMPTS = 3

#: Wall-clock granted to a worker to acknowledge an attach (covers
#: unpickling a large shard structure on a loaded machine).
_ATTACH_TIMEOUT = 60.0


class ExecutorError(IndexStateError):
    """A process-executor call failed beyond what failover can mask."""


@dataclass(frozen=True)
class ExecutorSpec:
    """Typed description of how shard work is executed.

    Attributes:
        kind: ``"serial"`` (inline), ``"thread"`` (shared pool), or
            ``"process"`` (shared-memory worker processes).
        n_workers: pool size; None picks ``min(n_shards, cpu_count)``
            (process mode never below *n_replicas*).
        n_replicas: process mode — workers eligible to serve each
            shard; reads go to the least-loaded live one, and a dead
            or timed-out worker fails over to the others.
        timeout_s: process mode — deadline per batch IPC round; a
            worker silent past it is killed, respawned, and its slices
            retried.
    """

    kind: str = "serial"
    n_workers: int | None = None
    n_replicas: int = 1
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in EXECUTOR_KINDS:
            raise IndexStateError(
                f"executor kind must be one of {EXECUTOR_KINDS}, got {self.kind!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise IndexStateError("n_workers must be >= 1")
        if self.n_replicas < 1:
            raise IndexStateError("n_replicas must be >= 1")
        if self.timeout_s <= 0:
            raise IndexStateError("timeout_s must be positive")

    @classmethod
    def parse(cls, value: "ExecutorSpec | str | None") -> "ExecutorSpec":
        """Coerce a spec, ``"kind"`` / ``"kind:N"`` string, or None."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            kind, sep, workers = value.partition(":")
            try:
                n_workers = int(workers) if sep else None
            except ValueError:
                raise IndexStateError(f"bad executor spec {value!r}") from None
            return cls(kind=kind, n_workers=n_workers)
        raise IndexStateError(
            f"executor must be an ExecutorSpec or string, got {type(value).__name__}"
        )

    def resolved_workers(self, n_shards: int) -> int:
        """Concrete pool size for *n_shards* shards on this machine."""
        if self.n_workers is not None:
            return max(self.n_workers, 1)
        cores = os.cpu_count() or 1
        base = max(min(max(n_shards, 1), cores), 1)
        return max(base, self.n_replicas) if self.kind == "process" else base


#: Legacy knobs already warned about this process (warn once each).
_DEPRECATION_WARNED: set[str] = set()


def _warn_once(knob: str, hint: str) -> None:
    if knob in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(knob)
    warnings.warn(
        f"{knob} is deprecated; pass executor={hint} instead",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_executor(
    executor: ExecutorSpec | str | None = None,
    *,
    max_workers: int | None = None,
    threaded: bool | None = None,
) -> ExecutorSpec:
    """Resolve the executor spec, mapping the deprecated knobs.

    ``threaded=True`` and ``max_workers=N`` (N > 1) both meant "fan
    out on a thread pool"; they now map onto a thread
    :class:`ExecutorSpec` with a once-per-process
    ``DeprecationWarning``.  An explicit *executor* wins; combining it
    with a legacy knob is an error rather than a silent preference.
    """
    if executor is not None:
        if max_workers is not None or threaded is not None:
            raise IndexStateError(
                "pass either executor= or the deprecated threaded=/max_workers=, "
                "not both"
            )
        return ExecutorSpec.parse(executor)
    if threaded is not None:
        _warn_once("threaded=", "ExecutorSpec('thread')")
        return ExecutorSpec(kind="thread" if threaded else "serial")
    if max_workers is not None:
        _warn_once("max_workers=", "ExecutorSpec('thread', n_workers=...)")
        if max_workers > 1:
            return ExecutorSpec(kind="thread", n_workers=max_workers)
        return ExecutorSpec()
    return ExecutorSpec()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:
    """Shard-worker loop: attach published shards, serve lookups.

    Runs in a separate process.  State is the attached shards only;
    every message carries a request id echoed in the response.  Any
    exception is reported as an ``("err", req, message)`` response —
    the worker survives to serve the next request; only a closed pipe
    (parent gone or exit requested) ends the loop.
    """
    attached: dict[int, tuple["LearnedIndex", object]] = {}

    def _drop(shard_no: int) -> None:
        old = attached.pop(shard_no, None)
        if old is not None and old[1] is not None:
            old[1].close()  # type: ignore[union-attr]

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "exit":
                break
            op, req = msg[0], msg[1]
            try:
                if op == "lookup":
                    shard_no, keys = msg[2], msg[3]
                    entry = attached.get(shard_no)
                    if entry is None:
                        raise IndexStateError(f"shard {shard_no} is not attached")
                    batch = entry[0].lookup_many(keys)
                    out = (
                        "ok",
                        req,
                        (batch.found, batch.values, batch.levels, batch.search_steps),
                    )
                elif op == "attach":
                    shard_no, payload, name, table = msg[2], msg[3], msg[4], msg[5]
                    index, shm = attach_segment_index(payload, name, table)
                    _drop(shard_no)
                    attached[shard_no] = (index, shm)
                    out = ("ok", req, os.getpid())
                elif op == "detach":
                    _drop(msg[2])
                    out = ("ok", req, None)
                elif op == "ping":
                    out = ("ok", req, os.getpid())
                else:
                    out = ("err", req, f"unknown op {op!r}")
            except BaseException as exc:
                out = ("err", req, f"{type(exc).__name__}: {exc}")
            try:
                conn.send(out)
            except (BrokenPipeError, OSError):
                break
    finally:
        for shard_no in list(attached):
            _drop(shard_no)
        conn.close()


class _WorkerHandle:
    """Parent-side record of one worker process."""

    __slots__ = ("slot", "proc", "conn", "restarts", "in_flight", "served")

    def __init__(self, slot: int, proc, conn, restarts: int = 0):
        self.slot = slot
        self.proc = proc
        self.conn = conn
        self.restarts = restarts
        self.in_flight = 0
        self.served = 0


# ----------------------------------------------------------------------
# Parent-side executor
# ----------------------------------------------------------------------
class ProcessShardExecutor:
    """Replicated process pool serving shard lookups over IPC.

    Shard *s* is replicated on worker slots ``(s + r) % n_workers``
    for ``r < n_replicas`` — adjacent shards land on different slots,
    so a batch touching K shards spreads over ``min(K, n_workers)``
    processes even with one replica.  All public methods are
    serialised by an internal lock: one batch is in flight at a time,
    fanned out *within* the call — which is where the parallelism is.
    """

    def __init__(self, spec: ExecutorSpec, n_shards: int):
        self.spec = spec
        method = os.environ.get(MP_START_ENV) or (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._ctx = get_context(method)
        self.n_workers = spec.resolved_workers(n_shards)
        self.n_replicas = max(1, min(spec.n_replicas, self.n_workers))
        self._lock = threading.RLock()
        self._req = itertools.count(1)
        self._segments: dict[int, ShardSegment] = {}
        self._closed = False
        reg = get_registry()
        self._c_restarts = reg.counter("executor_worker_restarts_total")
        self._c_failovers = reg.counter("executor_failovers_total")
        self._c_timeouts = reg.counter("executor_timeouts_total")
        self._c_batches = reg.counter("executor_ipc_batches_total")
        self._g_live = reg.gauge("executor_live_workers")
        self._workers = [self._spawn(slot) for slot in range(self.n_workers)]
        self._set_live_gauge()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has torn the pool down."""
        return self._closed

    def replica_slots(self, shard_no: int) -> tuple[int, ...]:
        """Worker slots replicating *shard_no* (attach order)."""
        return tuple(
            (shard_no + r) % self.n_workers for r in range(self.n_replicas)
        )

    def segment_names(self) -> tuple[str, ...]:
        """Names of the live shared-memory segments (tests/debugging)."""
        with self._lock:
            return tuple(
                seg.name for seg in self._segments.values() if seg.name is not None
            )

    def restarts_total(self) -> int:
        """Total worker respawns since the pool started."""
        with self._lock:
            return sum(w.restarts for w in self._workers)

    def health(self) -> tuple[ReplicaHealth, ...]:
        """Per-replica liveness/load snapshot (obs surface)."""
        with self._lock:
            rows = []
            for w in self._workers:
                shards = tuple(
                    s for s in sorted(self._segments)
                    if w.slot in self.replica_slots(s)
                )
                rows.append(
                    ReplicaHealth(
                        slot=w.slot,
                        pid=w.proc.pid,
                        alive=w.proc.is_alive(),
                        shards=shards,
                        in_flight=w.in_flight,
                        served_batches=w.served,
                        restarts=w.restarts,
                    )
                )
            return tuple(rows)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, shard_no: int, index: "LearnedIndex") -> None:
        """(Re)publish one shard to its replicas, retiring the old epoch."""
        with self._lock:
            self._ensure_open()
            seg = publish_index(index)
            old = self._segments.get(shard_no)
            self._segments[shard_no] = seg
            try:
                for slot in self.replica_slots(shard_no):
                    self._attach_to(slot, shard_no, seg)
            except BaseException:
                self._segments.pop(shard_no, None)
                seg.close(unlink=True)
                if old is not None:
                    self._segments[shard_no] = old
                raise
            if old is not None:
                old.close(unlink=True)

    def withdraw(self, shard_no: int) -> None:
        """Drop a shard's publication (replicas detach, segment unlinks)."""
        with self._lock:
            seg = self._segments.pop(shard_no, None)
            if seg is None:
                return
            for slot in self.replica_slots(shard_no):
                try:
                    self._call(slot, ("detach", shard_no), timeout=self.spec.timeout_s)
                except ExecutorError:
                    self._respawn(slot)
            seg.close(unlink=True)

    # ------------------------------------------------------------------
    # Lookups (the hot path)
    # ------------------------------------------------------------------
    def lookup(
        self, tasks: list[tuple[int, np.ndarray]]
    ) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Serve ``(shard_no, keys)`` slices on the replica pool.

        Returns ``{shard_no: (found, values, levels, steps)}``.  Each
        slice goes to the least-loaded live replica of its shard; the
        call is bounded by ``spec.timeout_s`` per attempt, and a dead
        or silent worker is respawned with its slices retried
        (at most ``_MAX_ATTEMPTS`` attempts per slice).
        """
        if not tasks:
            return {}
        with self._lock:
            self._ensure_open()
            if self._reg_enabled():
                self._c_batches.inc()
            results: dict[int, tuple] = {}
            # req_id -> [shard_no, keys, slot, attempt]
            pending: dict[int, list] = {}
            for shard_no, keys in tasks:
                self._send_task(pending, shard_no, keys, attempt=1)
            deadline = time.monotonic() + self.spec.timeout_s
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    deadline = self._handle_timeout(pending)
                    continue
                conns = {}
                for state in pending.values():
                    w = self._workers[state[2]]
                    conns[w.conn] = state[2]
                ready = mp_connection.wait(list(conns), timeout=min(remaining, 0.25))
                for conn in ready:
                    slot = conns[conn]
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        self._failover_slot(slot, pending)
                        break  # conns map is stale; recompute
                    tag, req, body = msg
                    state = pending.pop(req, None)
                    if state is None:
                        continue  # response from an abandoned attempt
                    worker = self._workers[slot]
                    worker.in_flight = max(worker.in_flight - 1, 0)
                    if tag == "err":
                        raise ExecutorError(
                            f"shard {state[0]} worker {slot} failed: {body}"
                        )
                    worker.served += 1
                    results[state[0]] = body
            return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and unlink every published segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for w in self._workers:
                try:
                    w.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
            for w in self._workers:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
                if w.proc.is_alive():
                    w.proc.kill()
                    w.proc.join(timeout=1.0)
                w.conn.close()
            for seg in self._segments.values():
                seg.close(unlink=True)
            self._segments.clear()
            self._set_live_gauge()

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reg_enabled(self) -> bool:
        return get_registry().enabled

    def _set_live_gauge(self) -> None:
        if self._reg_enabled():
            self._g_live.set(
                0 if self._closed
                else sum(1 for w in self._workers if w.proc.is_alive())
            )

    def _ensure_open(self) -> None:
        if self._closed:
            raise ExecutorError("process executor is closed")

    def _spawn(self, slot: int, restarts: int = 0) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shard-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(slot, proc, parent_conn, restarts=restarts)

    def _respawn(self, slot: int) -> None:
        """Kill and replace a worker, replaying its shard attaches."""
        old = self._workers[slot]
        if old.proc.is_alive():
            old.proc.terminate()
            old.proc.join(timeout=1.0)
        if old.proc.is_alive():
            old.proc.kill()
            old.proc.join(timeout=1.0)
        old.conn.close()
        fresh = self._spawn(slot, restarts=old.restarts + 1)
        self._workers[slot] = fresh
        for shard_no, seg in self._segments.items():
            if slot in self.replica_slots(shard_no):
                self._attach_to(slot, shard_no, seg)
        if self._reg_enabled():
            self._c_restarts.inc()
        self._set_live_gauge()

    def _attach_to(self, slot: int, shard_no: int, seg: ShardSegment) -> None:
        self._call(
            slot,
            ("attach", shard_no, seg.payload, seg.name, seg.table),
            timeout=max(_ATTACH_TIMEOUT, self.spec.timeout_s),
            retry_respawn=True,
        )

    def _call(
        self,
        slot: int,
        msg: tuple,
        timeout: float,
        retry_respawn: bool = False,
    ):
        """Synchronous request/response to one worker (attach/detach).

        With *retry_respawn*, a dead worker is respawned and the call
        retried once — attach replay during respawn relies on this not
        recursing (the fresh worker starts with no attaches pending).
        """
        for attempt in (1, 2) if retry_respawn else (1,):
            w = self._workers[slot]
            req = next(self._req)
            try:
                if not w.proc.is_alive():
                    raise BrokenPipeError("worker process is not alive")
                w.conn.send((msg[0], req) + msg[1:])
                deadline = time.monotonic() + timeout
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ExecutorError(
                            f"worker {slot} did not answer {msg[0]!r} "
                            f"within {timeout:.1f}s"
                        )
                    if not w.conn.poll(min(remaining, 0.25)):
                        continue
                    tag, got_req, body = w.conn.recv()
                    if got_req != req:
                        continue  # stale response from an abandoned request
                    if tag == "err":
                        raise ExecutorError(f"worker {slot} {msg[0]}: {body}")
                    return body
            except (BrokenPipeError, EOFError, OSError) as exc:
                if retry_respawn and attempt == 1:
                    # Replace the dead process by hand (no attach replay:
                    # the caller is mid-attach already).
                    dead = self._workers[slot]
                    dead.conn.close()
                    self._workers[slot] = self._spawn(slot, dead.restarts + 1)
                    if self._reg_enabled():
                        self._c_restarts.inc()
                    continue
                raise ExecutorError(f"worker {slot} is gone: {exc}") from exc
        raise ExecutorError(f"worker {slot} kept failing {msg[0]!r}")

    def _send_task(
        self,
        pending: dict[int, list],
        shard_no: int,
        keys: np.ndarray,
        attempt: int,
        exclude: tuple[int, ...] = (),
    ) -> None:
        """Dispatch one slice to the least-loaded live replica."""
        if attempt > _MAX_ATTEMPTS:
            raise ExecutorError(
                f"shard {shard_no}: no replica answered after "
                f"{_MAX_ATTEMPTS} attempts"
            )
        candidates = [s for s in self.replica_slots(shard_no) if s not in exclude]
        if not candidates:
            candidates = list(self.replica_slots(shard_no))
        candidates.sort(key=lambda s: (self._workers[s].in_flight, s))
        last_exc: BaseException | None = None
        for slot in candidates:
            w = self._workers[slot]
            if not w.proc.is_alive():
                try:
                    self._respawn(slot)
                except ExecutorError as exc:
                    last_exc = exc
                    continue
                w = self._workers[slot]
            try:
                req = next(self._req)
                w.conn.send(("lookup", req, shard_no, keys))
            except (BrokenPipeError, OSError) as exc:
                last_exc = exc
                continue
            w.in_flight += 1
            pending[req] = [shard_no, keys, slot, attempt]
            return
        raise ExecutorError(
            f"shard {shard_no}: every replica is unreachable"
        ) from last_exc

    def _failover_slot(self, slot: int, pending: dict[int, list]) -> None:
        """A worker died mid-batch: respawn it, retry its slices elsewhere."""
        if self._reg_enabled():
            self._c_failovers.inc()
        stranded = [
            (req, state) for req, state in pending.items() if state[2] == slot
        ]
        for req, __ in stranded:
            pending.pop(req)
        self._respawn(slot)
        for __, (shard_no, keys, __slot, attempt) in stranded:
            # The respawned slot is attached again and eligible; prefer
            # the other replicas first via the load-sorted dispatch.
            self._send_task(pending, shard_no, keys, attempt + 1)

    def _handle_timeout(self, pending: dict[int, list]) -> float:
        """Deadline expired: kill silent workers, retry their slices.

        Returns the fresh deadline for the retry round.
        """
        if self._reg_enabled():
            self._c_timeouts.inc()
        silent = sorted({state[2] for state in pending.values()})
        stranded = list(pending.items())
        pending.clear()
        for slot in silent:
            self._respawn(slot)
        for __, (shard_no, keys, slot, attempt) in stranded:
            self._send_task(pending, shard_no, keys, attempt + 1, exclude=(slot,))
        return time.monotonic() + self.spec.timeout_s
