"""Shared-memory publication of index buffers for process serving.

One :class:`ShardSegment` per published shard: the index is split by
:meth:`~repro.indexes.base.LearnedIndex.export_buffers` into a small
pickled structure plus its large numpy buffers, the buffers are packed
into a single ``multiprocessing.shared_memory`` segment, and worker
processes rebuild the index around zero-copy read-only views of that
segment (:func:`attach_segment_index`).  Publishing copies each buffer
once; every attach afterwards just maps the same pages.

Lifecycle: the *publisher* (the router's process executor) owns the
segment and unlinks it on close or republish; *attachers* (workers)
only close their mapping.  Worker-side attaches bypass
``multiprocessing.resource_tracker`` registration entirely (see
:func:`_attach_untracked`) so a dying worker can never unlink a
segment other replicas are still serving from — the tests in
``tests/serving/test_executor.py`` assert nothing leaks either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..indexes.base import LearnedIndex, attach_from_buffers

__all__ = [
    "BufferTable",
    "ShardSegment",
    "attach_segment_index",
    "publish_index",
]

#: Byte alignment of each packed buffer inside a segment (cache-line).
_ALIGN = 64

#: One packed buffer: ``(byte_offset, dtype_str, shape)``.
BufferTable = list[tuple[int, str, tuple[int, ...]]]


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to segment *name* without registering the attach.

    On POSIX (until 3.13's ``track=`` parameter), ``SharedMemory``
    registers *every* open — including read-only attaches — with the
    resource tracker, whose cleanup unlinks anything still registered:
    correct for an owner, destructive for a reader.  Workers share the
    publisher's tracker (fork), so an attach-register/unregister pair
    in a worker would silently drop the *publisher's* registration —
    losing crash cleanup and tripping tracker KeyErrors at unlink.
    Suppressing the register at attach keeps exactly one registration
    alive: the owner's.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ShardSegment:
    """Publisher-side handle of one shard's shared-memory publication.

    Attributes:
        payload: pickled index structure (buffers replaced by refs).
        table: per-buffer ``(offset, dtype, shape)`` into the segment.
        shm: the owned segment, or None when every buffer was small
            enough to stay inside the payload.
    """

    payload: bytes
    table: BufferTable
    shm: shared_memory.SharedMemory | None

    @property
    def name(self) -> str | None:
        """OS name of the segment (None when fully inline)."""
        return self.shm.name if self.shm is not None else None

    def nbytes(self) -> int:
        """Size of the mapped segment in bytes (0 when inline)."""
        return self.shm.size if self.shm is not None else 0

    def close(self, unlink: bool = True) -> None:
        """Close the mapping and (as owner) unlink the segment."""
        if self.shm is None:
            return
        self.shm.close()
        if unlink:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


def publish_index(index: LearnedIndex, name_hint: str = "repro") -> ShardSegment:
    """Export *index* and pack its buffers into one owned segment."""
    payload, buffers = index.export_buffers()
    table: BufferTable = []
    offset = 0
    for arr in buffers:
        table.append((offset, arr.dtype.str, tuple(arr.shape)))
        offset = _aligned(offset + arr.nbytes)
    if not buffers:
        return ShardSegment(payload=payload, table=table, shm=None)
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for arr, (off, __, __) in zip(buffers, table):
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
        dst[...] = arr
    return ShardSegment(payload=payload, table=table, shm=shm)


def attach_segment_index(
    payload: bytes, name: str | None, table: BufferTable
) -> tuple[LearnedIndex, shared_memory.SharedMemory | None]:
    """Worker-side attach: rebuild the index over zero-copy views.

    Returns the index plus the mapping that backs its buffers — the
    caller must keep the mapping open for the index's lifetime and
    ``close()`` (never unlink) it afterwards.  Views are read-only:
    replicas share the physical pages, so a worker mutating them would
    corrupt every other replica.
    """
    if name is None:
        return attach_from_buffers(payload, []), None
    shm = _attach_untracked(name)
    views: list[np.ndarray] = []
    for off, dtype, shape in table:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        view.flags.writeable = False
        views.append(view)
    return attach_from_buffers(payload, views), shm
