"""Immutable sorted run files: the store's only data container.

A *run* is one sorted, deduplicated ``(keys, values)`` batch frozen
into a compressed ``.npz`` (arrays ``keys`` and ``values``, both
int64 — the same layout :func:`repro.io.save_keys` writes, so a run
is inspectable with nothing but numpy).  Runs are written once and
never modified; compaction replaces whole files, it never patches
one.

Crash safety is write-temp-then-rename: the payload is serialised to
memory, hashed (sha256), written to ``<name>.tmp``, fsynced, and
``os.replace``d into place, then the directory entry is fsynced.  A
crash at any point leaves either no file or a complete one — a
``.tmp`` straggler is garbage a later open sweeps away.  The file
only becomes *live* when a manifest commit references it, so the
checksum in the manifest always describes a fully written file.
"""

from __future__ import annotations

import hashlib
import io
import os
from pathlib import Path

import numpy as np

from ..core.exceptions import IndexStateError
from .faults import crashpoint

__all__ = [
    "StoreCorruptionError",
    "fsync_dir",
    "read_run_file",
    "sorted_unique_run",
    "write_run_file",
]


class StoreCorruptionError(IndexStateError):
    """A run file does not match the manifest that references it."""


def fsync_dir(path: Path) -> None:
    """fsync a directory so a rename inside it is itself durable."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def sorted_unique_run(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort a write batch by key, last occurrence winning duplicates."""
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if keys.shape != values.shape:
        raise IndexStateError("run values must parallel keys")
    # Stable sort + keep the *last* duplicate: reverse, stable-sort,
    # keep first of each group, then the result is ascending again.
    order = np.argsort(keys[::-1], kind="stable")
    k = keys[::-1][order]
    v = values[::-1][order]
    keep = np.ones(k.size, dtype=bool)
    keep[1:] = k[1:] != k[:-1]
    return k[keep], v[keep]


def write_run_file(
    directory: Path, name: str, keys: np.ndarray, values: np.ndarray
) -> tuple[str, int]:
    """Atomically write one run file; returns ``(checksum, size_bytes)``.

    *keys* must already be sorted unique int64 (see
    :func:`sorted_unique_run`); the payload is built in memory first
    so the checksum describes exactly the bytes that land on disk.
    """
    buffer = io.BytesIO()
    np.savez_compressed(buffer, keys=keys, values=values)
    payload = buffer.getvalue()
    checksum = "sha256:" + hashlib.sha256(payload).hexdigest()
    final = directory / name
    tmp = directory / (name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    crashpoint("run.after_tmp")
    os.replace(tmp, final)
    fsync_dir(directory)
    crashpoint("run.after_rename")
    return checksum, len(payload)


def read_run_file(
    directory: Path, name: str, checksum: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Load one run file, verifying its manifest checksum when given."""
    path = directory / name
    try:
        payload = path.read_bytes()
    except OSError as exc:
        raise StoreCorruptionError(f"run file {name} unreadable: {exc}") from exc
    if checksum is not None:
        actual = "sha256:" + hashlib.sha256(payload).hexdigest()
        if actual != checksum:
            raise StoreCorruptionError(
                f"run file {name} checksum mismatch: manifest {checksum}, file {actual}"
            )
    with np.load(io.BytesIO(payload)) as data:
        keys = data["keys"].astype(np.int64)
        values = data["values"].astype(np.int64)
    return keys, values
