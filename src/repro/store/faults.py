"""Crash-injection points for the durability tests.

The recovery guarantees in this package are only worth anything if a
process can die *between* any two steps of a flush or compaction and
the store still reopens to a consistent state.  Sprinkling the
write paths with named :func:`crashpoint` calls lets the test suite
kill the process (``SIGKILL``, no cleanup handlers) at an exact step:
a subprocess sets ``REPRO_STORE_CRASH=<point name>`` and runs a
normal workload; the parent then reopens the half-written directory
and asserts bit-parity with an uninterrupted twin.

In production the environment variable is unset and every call is a
dictionary miss — nothing to configure, nothing to pay.
"""

from __future__ import annotations

import os
import signal

__all__ = ["CRASH_ENV", "crashpoint"]

#: Environment variable naming the crash point to die at.
CRASH_ENV = "REPRO_STORE_CRASH"


def crashpoint(name: str) -> None:
    """Die with SIGKILL iff ``REPRO_STORE_CRASH`` names *name*.

    SIGKILL (not ``sys.exit``) so no ``atexit`` hook, ``finally``
    block, or buffered write can tidy up behind the crash — the test
    sees exactly what a power cut would leave on disk.
    """
    if os.environ.get(CRASH_ENV) == name:
        os.kill(os.getpid(), signal.SIGKILL)
