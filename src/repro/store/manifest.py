"""The manifest: one JSON file naming everything that is durable.

``MANIFEST.json`` is the store's single commit point.  It carries a
**monotonic generation number** and the authoritative list of live
artefacts — per-shard base snapshots and the sorted runs stacked on
top of them — each with a sha256 checksum of its exact file bytes.
State changes (a flush, a compaction, a full snapshot) prepare their
files first and then *commit* by atomically replacing the manifest:
write ``MANIFEST.json.tmp``, fsync, ``os.replace``, fsync the
directory.  A crash before the replace leaves the previous
generation fully intact (new files are unreferenced orphans, swept on
the next open); a crash after it leaves the new generation fully
intact (replaced files are unreferenced and likewise swept).  There
is no observable in-between, which is what makes "any prefix of
completed generations reopens cleanly" a testable property rather
than a hope.

The schema is versioned (`format_version`) and documented for
out-of-library inspection in ``docs/PERSISTENCE.md``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.exceptions import IndexStateError
from .faults import crashpoint
from .runs import fsync_dir

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "Manifest",
    "RunMeta",
    "commit_manifest",
    "load_manifest",
]

#: Bumped when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

#: The manifest file name inside a data directory.
MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class RunMeta:
    """One live on-disk artefact, as recorded in the manifest.

    Attributes:
        name: file name inside the data directory.
        kind: ``"base"`` (a shard's full snapshot) or ``"run"`` (a
            sorted delta stacked on top of the base).
        shard: owning shard number.
        generation: the manifest generation whose commit made this
            file live — replay order within a shard.
        n_keys / min_key / max_key: run statistics (0/-1/-1 for an
            empty artefact), letting operators reason about overlap
            without opening the file.
        checksum: ``sha256:<hex>`` of the exact file bytes.
        size_bytes: file size, for compaction bin-packing.
    """

    name: str
    kind: str
    shard: int
    generation: int
    n_keys: int
    min_key: int
    max_key: int
    checksum: str
    size_bytes: int

    def to_json(self) -> dict:
        """Serialise to the manifest's ``artefacts[*]`` JSON shape."""
        return {
            "name": self.name,
            "kind": self.kind,
            "shard": self.shard,
            "generation": self.generation,
            "n_keys": self.n_keys,
            "min_key": self.min_key,
            "max_key": self.max_key,
            "checksum": self.checksum,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "RunMeta":
        return cls(
            name=str(obj["name"]),
            kind=str(obj["kind"]),
            shard=int(obj["shard"]),
            generation=int(obj["generation"]),
            n_keys=int(obj["n_keys"]),
            min_key=int(obj["min_key"]),
            max_key=int(obj["max_key"]),
            checksum=str(obj["checksum"]),
            size_bytes=int(obj["size_bytes"]),
        )


@dataclass(frozen=True)
class Manifest:
    """The committed state of one data directory (see module doc).

    ``service`` carries what :meth:`IndexService.open_snapshot` needs
    to rebuild the serving facade without the original dataset:
    family, shard boundaries, per-shard smoothing alphas, and the
    partitioning mode that produced them.
    """

    generation: int
    family: str
    n_shards: int
    boundaries: tuple[int, ...]
    alphas: tuple[float | None, ...]
    mode: str
    artefacts: tuple[RunMeta, ...] = ()
    format_version: int = FORMAT_VERSION
    updated_ts: float = 0.0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def base_for(self, shard: int) -> RunMeta | None:
        """The shard's base snapshot (None for a never-snapshotted shard)."""
        for meta in self.artefacts:
            if meta.kind == "base" and meta.shard == shard:
                return meta
        return None

    def runs_for(self, shard: int) -> tuple[RunMeta, ...]:
        """The shard's delta runs in commit (replay) order."""
        return tuple(
            sorted(
                (m for m in self.artefacts if m.kind == "run" and m.shard == shard),
                key=lambda m: m.generation,
            )
        )

    def runs_outstanding(self) -> int:
        """Delta runs not yet folded into a base, across all shards."""
        return sum(1 for m in self.artefacts if m.kind == "run")

    def file_names(self) -> set[str]:
        """Every file the manifest references."""
        return {m.name for m in self.artefacts}

    # ------------------------------------------------------------------
    # Transitions (pure: return the next manifest, caller commits)
    # ------------------------------------------------------------------
    def with_artefacts(
        self,
        add: tuple[RunMeta, ...] = (),
        remove_names: frozenset[str] | set[str] = frozenset(),
    ) -> "Manifest":
        """Next generation with *add* appended and *remove_names* gone."""
        kept = tuple(m for m in self.artefacts if m.name not in remove_names)
        return replace(
            self,
            generation=self.generation + 1,
            artefacts=kept + tuple(add),
            updated_ts=time.time(),
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Serialise to the MANIFEST.json document shape (version 1)."""
        return {
            "format_version": self.format_version,
            "generation": self.generation,
            "updated_ts": self.updated_ts,
            "service": {
                "family": self.family,
                "n_shards": self.n_shards,
                "boundaries": list(self.boundaries),
                "alphas": list(self.alphas),
                "mode": self.mode,
            },
            "artefacts": [m.to_json() for m in self.artefacts],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Manifest":
        version = int(obj.get("format_version", -1))
        if version != FORMAT_VERSION:
            raise IndexStateError(
                f"manifest format_version {version} unsupported "
                f"(this library reads version {FORMAT_VERSION})"
            )
        service = obj["service"]
        return cls(
            generation=int(obj["generation"]),
            family=str(service["family"]),
            n_shards=int(service["n_shards"]),
            boundaries=tuple(int(b) for b in service["boundaries"]),
            alphas=tuple(
                None if a is None else float(a) for a in service["alphas"]
            ),
            mode=str(service.get("mode", "equi_depth")),
            artefacts=tuple(RunMeta.from_json(m) for m in obj["artefacts"]),
            format_version=version,
            updated_ts=float(obj.get("updated_ts", 0.0)),
        )


def load_manifest(directory: str | Path) -> Manifest | None:
    """The committed manifest of *directory*, or None if uninitialised."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    return Manifest.from_json(json.loads(path.read_text(encoding="utf-8")))


def commit_manifest(directory: str | Path, manifest: Manifest) -> Manifest:
    """Atomically publish *manifest* as the directory's committed state.

    The previous manifest (if any) must carry a strictly smaller
    generation — the monotonicity that makes "reopen at any prefix"
    meaningful.  Returns the manifest for chaining.
    """
    directory = Path(directory)
    previous = load_manifest(directory)
    if previous is not None and previous.generation >= manifest.generation:
        raise IndexStateError(
            f"manifest generation must grow: committed {previous.generation}, "
            f"attempted {manifest.generation}"
        )
    payload = json.dumps(manifest.to_json(), indent=2, sort_keys=True) + "\n"
    tmp = directory / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    crashpoint("manifest.before_rename")
    os.replace(tmp, directory / MANIFEST_NAME)
    fsync_dir(directory)
    crashpoint("manifest.after_rename")
    return manifest
