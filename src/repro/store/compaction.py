"""Compaction strategies: which runs to fold together, and into what.

Flushes leave a stack of small sorted runs behind each shard's base
snapshot.  Reads stay correct regardless (recovery replays runs in
generation order, last write winning), but every outstanding run is
extra replay work at reopen and extra bytes on disk, so a background
compactor periodically folds them.  Two classic shapes are offered,
selectable from the CLI (``--compaction tiered|sortmerge``):

* **size-tiered** (:class:`SizeTieredStrategy`) — bin-pack runs of
  similar size (log2 buckets) and merge each full bucket into one
  bigger *run*, leaving the base untouched.  Cheap per compaction,
  write-amplification-friendly; the base only rewrites when a merged
  run eventually reaches its tier.  The default, mirroring the
  write-heavy posture of the serving layer's staleness-driven merge.
* **full sort-merge** (:class:`SortMergeStrategy`) — fold the base
  and *every* run into one fresh base snapshot.  Maximum read/reopen
  speed (zero replay), maximum write amplification; the right call
  before shipping a data directory or when runs pile past a bound.

Strategies are pure planners: they look at a :class:`Manifest` and
return :class:`CompactionPlan`s; :class:`~repro.store.store.DurableStore`
executes the plans (merge, write, commit, delete inputs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .manifest import Manifest, RunMeta

__all__ = [
    "CompactionPlan",
    "CompactionStrategy",
    "SizeTieredStrategy",
    "SortMergeStrategy",
    "make_strategy",
]


@dataclass(frozen=True)
class CompactionPlan:
    """One executable unit of compaction for one shard.

    Attributes:
        shard: the shard whose artefacts are folded.
        inputs: manifest entries consumed (deleted once the commit
            that replaces them lands).
        output_kind: ``"run"`` (tiered: runs merge into a bigger run)
            or ``"base"`` (sort-merge: everything becomes the new
            base snapshot).
    """

    shard: int
    inputs: tuple[RunMeta, ...]
    output_kind: str

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.inputs)


class CompactionStrategy:
    """Planner interface: manifest in, zero or more plans out."""

    name = "abstract"

    def plan(self, manifest: Manifest) -> list[CompactionPlan]:
        """Return the compaction plans this strategy would execute now.

        Each plan folds one shard's inputs into a single output and is
        committed as its own manifest generation; an empty list means
        the directory is already as compact as the strategy wants it.
        """
        raise NotImplementedError


class SizeTieredStrategy(CompactionStrategy):
    """Merge ``min_runs``+ similarly-sized *adjacent* runs into one.

    Runs are tiered by ``floor(log2(size_bytes))`` and grouped
    greedily along the shard's generation order; a group only closes
    when the tier changes.  Any same-tier group of at least
    *min_runs* consecutive runs is planned as one merge.  Adjacency
    matters for correctness, not just taste: runs carry no per-key
    timestamps, so last-write-wins is encoded purely in replay order
    — merging around a surviving younger run would replay an older
    update *after* it.  Bases are never touched, so a tiered pass is
    cheap and incremental.
    """

    name = "tiered"

    def __init__(self, min_runs: int = 4):
        if min_runs < 2:
            raise ValueError("tiered compaction needs min_runs >= 2")
        self.min_runs = int(min_runs)

    def plan(self, manifest: Manifest) -> list[CompactionPlan]:
        plans: list[CompactionPlan] = []
        for shard in range(manifest.n_shards):
            group: list[RunMeta] = []
            group_tier: int | None = None
            for meta in manifest.runs_for(shard):
                tier = int(math.log2(max(1, meta.size_bytes)))
                if tier != group_tier:
                    if len(group) >= self.min_runs:
                        plans.append(
                            CompactionPlan(
                                shard=shard,
                                inputs=tuple(group),
                                output_kind="run",
                            )
                        )
                    group = []
                    group_tier = tier
                group.append(meta)
            if len(group) >= self.min_runs:
                plans.append(
                    CompactionPlan(
                        shard=shard, inputs=tuple(group), output_kind="run"
                    )
                )
        return plans


class SortMergeStrategy(CompactionStrategy):
    """Fold base + every run into a fresh base once runs reach a bound.

    A shard is planned as soon as it has *max_runs* or more
    outstanding runs (or any runs at all when *max_runs* is 1, i.e.
    "always fully compact").
    """

    name = "sortmerge"

    def __init__(self, max_runs: int = 1):
        if max_runs < 1:
            raise ValueError("sort-merge compaction needs max_runs >= 1")
        self.max_runs = int(max_runs)

    def plan(self, manifest: Manifest) -> list[CompactionPlan]:
        plans: list[CompactionPlan] = []
        for shard in range(manifest.n_shards):
            runs = manifest.runs_for(shard)
            if len(runs) < self.max_runs:
                continue
            base = manifest.base_for(shard)
            inputs = ((base,) if base is not None else ()) + runs
            plans.append(
                CompactionPlan(shard=shard, inputs=inputs, output_kind="base")
            )
        return plans


def make_strategy(spec: str) -> CompactionStrategy:
    """Parse a CLI ``--compaction`` value into a strategy.

    ``"tiered"`` / ``"sortmerge"``, optionally with a run bound after
    a colon: ``"tiered:8"`` (min runs per tier), ``"sortmerge:4"``
    (runs before a full fold).
    """
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    if name == "tiered":
        return SizeTieredStrategy(min_runs=int(arg) if arg else 4)
    if name == "sortmerge":
        return SortMergeStrategy(max_runs=int(arg) if arg else 1)
    raise ValueError(
        f"unknown compaction strategy {spec!r} (expected 'tiered' or 'sortmerge')"
    )
