"""Durable snapshots + LSM-style compaction for the serving layer.

The serving stack is memory-resident: shards rebuild from the dataset
at startup and absorbed writes live in write buffers.  This package
makes that state *durable* with the classic LSM shape, sized for the
repo's sorted-int64 world:

* a **flush** freezes a shard's write buffer into an immutable sorted
  run file (compressed ``.npz``, same ``keys``/``values`` layout as
  :func:`repro.io.save_keys`);
* a JSON **manifest** with a monotonic generation number and sha256
  checksums names exactly which bases and runs are live — every
  state change commits by write-temp-then-rename, so a ``kill -9``
  at any instant leaves a directory that reopens to the newest fully
  committed generation;
* a **compactor** (size-tiered or full sort-merge, pluggable) folds
  runs back down, and recovery replays outstanding runs through the
  index families' ``bulk_insert_many`` — the same vectorised ingest
  path live merges use.

``docs/PERSISTENCE.md`` specifies the on-disk format;
``docs/OPERATIONS.md`` covers the operator knobs and the
crash-recovery drill.
"""

from .compaction import (
    CompactionPlan,
    CompactionStrategy,
    SizeTieredStrategy,
    SortMergeStrategy,
    make_strategy,
)
from .faults import CRASH_ENV, crashpoint
from .manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    RunMeta,
    commit_manifest,
    load_manifest,
)
from .runs import (
    StoreCorruptionError,
    read_run_file,
    sorted_unique_run,
    write_run_file,
)
from .store import DurableStore

__all__ = [
    "CRASH_ENV",
    "CompactionPlan",
    "CompactionStrategy",
    "DurableStore",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "Manifest",
    "RunMeta",
    "SizeTieredStrategy",
    "SortMergeStrategy",
    "StoreCorruptionError",
    "commit_manifest",
    "crashpoint",
    "load_manifest",
    "make_strategy",
    "read_run_file",
    "sorted_unique_run",
    "write_run_file",
]
