"""``DurableStore``: one data directory of bases, runs, and a manifest.

This is the execution engine behind the package docstring's LSM
shape.  A store owns one directory:

* per-shard **base** snapshots (``base-s<shard>-g<gen>.npz``),
* sorted delta **runs** flushed from write buffers
  (``run-g<gen>-s<shard>.npz``),
* the committed ``MANIFEST.json`` naming exactly which of those files
  are live.

Every mutation follows the same discipline: write new immutable
files, commit a new manifest generation referencing them, *then*
delete whatever the commit superseded.  Opening a directory therefore
needs no journal replay — load the manifest, sweep unreferenced files
(half-written flushes, compaction leftovers), done.

The store is deliberately ignorant of the serving layer: it moves
``(keys, values)`` int64 arrays and builds bare index objects through
the families' ``build`` / ``bulk_insert_many`` ingest paths.
``IndexService.snapshot`` / ``open_snapshot`` own the mapping between
a live service and a store.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..core.exceptions import IndexStateError
from ..obs.metrics import MetricsRegistry, get_registry
from .compaction import CompactionPlan, CompactionStrategy
from .faults import crashpoint
from .manifest import (
    MANIFEST_NAME,
    Manifest,
    RunMeta,
    commit_manifest,
    load_manifest,
)
from .runs import read_run_file, sorted_unique_run, write_run_file

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..indexes.base import LearnedIndex

__all__ = ["DurableStore"]


def _run_stats(keys: np.ndarray) -> tuple[int, int, int]:
    """(n_keys, min_key, max_key) with -1 sentinels for empty."""
    if keys.size == 0:
        return 0, -1, -1
    return int(keys.size), int(keys[0]), int(keys[-1])


class DurableStore:
    """One durable data directory (see module docstring).

    All public methods are thread-safe under one reentrant lock: the
    serving layer's merge worker flushes while a compaction trigger
    fires from another thread, and both serialise here.

    Args:
        data_dir: directory to own (created if missing).
        metrics: registry for flush/compaction instrumentation;
            defaults to the process-global one (disabled ⇒ free).
    """

    def __init__(
        self, data_dir: str | Path, metrics: MetricsRegistry | None = None
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._metrics = metrics if metrics is not None else get_registry()
        self._lock = threading.RLock()
        self._manifest = load_manifest(self.data_dir)
        self.sweep_orphans()
        self._publish_gauges()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Manifest | None:
        """The committed manifest (None before :meth:`initialize`)."""
        with self._lock:
            return self._manifest

    @property
    def generation(self) -> int:
        """The committed generation (0 before :meth:`initialize`)."""
        with self._lock:
            return 0 if self._manifest is None else self._manifest.generation

    def is_initialized(self) -> bool:
        """Whether the directory holds a committed manifest."""
        return self.manifest is not None

    def runs_outstanding(self) -> int:
        """Delta runs not yet folded into a base, across all shards."""
        manifest = self.manifest
        return 0 if manifest is None else manifest.runs_outstanding()

    def _require_manifest(self) -> Manifest:
        if self._manifest is None:
            raise IndexStateError(
                f"store at {self.data_dir} is not initialized "
                "(no MANIFEST.json; call initialize() or snapshot())"
            )
        return self._manifest

    def _publish_gauges(self) -> None:
        if not self._metrics.enabled:
            return
        self._metrics.gauge("store_generation").set(self.generation)
        self._metrics.gauge("store_runs_outstanding").set(self.runs_outstanding())

    # ------------------------------------------------------------------
    # Initialise: first full snapshot
    # ------------------------------------------------------------------
    def initialize(
        self,
        family: str,
        boundaries: Sequence[int],
        alphas: Sequence[float | None],
        mode: str,
        shard_arrays: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> Manifest:
        """Commit generation 1: one base snapshot per shard.

        *shard_arrays* holds each shard's sorted-unique
        ``(keys, values)`` pair (empty arrays for an empty shard).
        Re-initialising an already-committed directory is an error —
        open it instead, or point the service at a fresh directory.
        """
        with self._lock:
            if self._manifest is not None:
                raise IndexStateError(
                    f"store at {self.data_dir} is already initialized "
                    f"(generation {self._manifest.generation})"
                )
            artefacts = []
            for shard, (keys, values) in enumerate(shard_arrays):
                keys, values = sorted_unique_run(keys, values)
                name = f"base-s{shard:04d}-g{1:08d}.npz"
                checksum, size = write_run_file(self.data_dir, name, keys, values)
                n, lo, hi = _run_stats(keys)
                artefacts.append(
                    RunMeta(
                        name=name,
                        kind="base",
                        shard=shard,
                        generation=1,
                        n_keys=n,
                        min_key=lo,
                        max_key=hi,
                        checksum=checksum,
                        size_bytes=size,
                    )
                )
            manifest = Manifest(
                generation=1,
                family=str(family),
                n_shards=len(shard_arrays),
                boundaries=tuple(int(b) for b in boundaries),
                alphas=tuple(alphas),
                mode=str(mode),
                artefacts=tuple(artefacts),
                updated_ts=time.time(),
            )
            self._manifest = commit_manifest(self.data_dir, manifest)
            self._publish_gauges()
            return self._manifest

    # ------------------------------------------------------------------
    # Flush: write buffers become immutable runs
    # ------------------------------------------------------------------
    def append_runs(
        self, batches: Mapping[int, tuple[np.ndarray, np.ndarray]]
    ) -> int:
        """Freeze per-shard write batches into runs; returns the new gen.

        One call is one atomic commit: every batch's run file lands
        first, then a single manifest generation references them all.
        Empty batches are skipped; an all-empty mapping commits
        nothing and returns the current generation.
        """
        started = time.perf_counter()
        with self._lock:
            manifest = self._require_manifest()
            generation = manifest.generation + 1
            artefacts = []
            flushed_keys = 0
            for shard in sorted(batches):
                keys, values = sorted_unique_run(*batches[shard])
                if keys.size == 0:
                    continue
                if not 0 <= shard < manifest.n_shards:
                    raise IndexStateError(
                        f"flush for unknown shard {shard} "
                        f"(store has {manifest.n_shards})"
                    )
                name = f"run-g{generation:08d}-s{shard:04d}.npz"
                checksum, size = write_run_file(self.data_dir, name, keys, values)
                n, lo, hi = _run_stats(keys)
                flushed_keys += n
                artefacts.append(
                    RunMeta(
                        name=name,
                        kind="run",
                        shard=shard,
                        generation=generation,
                        n_keys=n,
                        min_key=lo,
                        max_key=hi,
                        checksum=checksum,
                        size_bytes=size,
                    )
                )
            if not artefacts:
                return manifest.generation
            crashpoint("flush.before_commit")
            self._manifest = commit_manifest(
                self.data_dir, manifest.with_artefacts(add=tuple(artefacts))
            )
            crashpoint("flush.after_commit")
            if self._metrics.enabled:
                self._metrics.counter("store_flushes_total").inc()
                self._metrics.counter("store_flushed_keys_total").inc(flushed_keys)
                self._metrics.histogram("store_flush_seconds").observe(
                    time.perf_counter() - started
                )
                self._publish_gauges()
            return self._manifest.generation

    def append_run(
        self, shard: int, keys: np.ndarray, values: np.ndarray
    ) -> int:
        """:meth:`append_runs` convenience for a single shard."""
        return self.append_runs({int(shard): (keys, values)})

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(
        self, strategy: CompactionStrategy, shard: int | None = None
    ) -> int:
        """Plan with *strategy* and execute; returns plans executed.

        Each plan is its own commit (write merged file → commit
        manifest → delete superseded inputs), so a crash between plans
        loses at most the not-yet-committed one and never corrupts
        the committed state.
        """
        executed = 0
        with self._lock:
            manifest = self._require_manifest()
            for plan in strategy.plan(manifest):
                if shard is not None and plan.shard != shard:
                    continue
                self._execute_plan(plan)
                executed += 1
        return executed

    def _execute_plan(self, plan: CompactionPlan) -> None:
        started = time.perf_counter()
        manifest = self._require_manifest()
        generation = manifest.generation + 1
        # Merge inputs oldest-to-newest so later runs win duplicates.
        parts_k = []
        parts_v = []
        for meta in sorted(plan.inputs, key=lambda m: (m.kind != "base", m.generation)):
            k, v = read_run_file(self.data_dir, meta.name, meta.checksum)
            parts_k.append(k)
            parts_v.append(v)
        keys, values = sorted_unique_run(
            np.concatenate(parts_k) if parts_k else np.empty(0, np.int64),
            np.concatenate(parts_v) if parts_v else np.empty(0, np.int64),
        )
        if plan.output_kind == "base":
            name = f"base-s{plan.shard:04d}-g{generation:08d}.npz"
        else:
            name = f"run-g{generation:08d}-s{plan.shard:04d}.npz"
        checksum, size = write_run_file(self.data_dir, name, keys, values)
        crashpoint("compact.after_write")
        n, lo, hi = _run_stats(keys)
        # The merged run replaces its inputs but must sort *before*
        # any younger surviving run, so it inherits the oldest input
        # generation rather than taking the commit's.
        out_generation = (
            generation
            if plan.output_kind == "base"
            else min(m.generation for m in plan.inputs)
        )
        meta = RunMeta(
            name=name,
            kind=plan.output_kind,
            shard=plan.shard,
            generation=out_generation,
            n_keys=n,
            min_key=lo,
            max_key=hi,
            checksum=checksum,
            size_bytes=size,
        )
        self._manifest = commit_manifest(
            self.data_dir,
            manifest.with_artefacts(
                add=(meta,), remove_names=set(plan.input_names)
            ),
        )
        crashpoint("compact.after_commit")
        for stale in plan.input_names:
            (self.data_dir / stale).unlink(missing_ok=True)
        if self._metrics.enabled:
            self._metrics.counter(
                "store_compactions_total", output=plan.output_kind
            ).inc()
            self._metrics.counter("store_compacted_runs_total").inc(
                len(plan.inputs)
            )
            self._metrics.histogram("store_compaction_seconds").observe(
                time.perf_counter() - started
            )
            self._publish_gauges()

    # ------------------------------------------------------------------
    # Reads: arrays and indexes
    # ------------------------------------------------------------------
    def load_shard_arrays(self, shard: int) -> tuple[np.ndarray, np.ndarray]:
        """The shard's merged ``(keys, values)`` — base + runs, last wins."""
        with self._lock:
            manifest = self._require_manifest()
            parts_k = []
            parts_v = []
            base = manifest.base_for(shard)
            stack = ((base,) if base is not None else ()) + manifest.runs_for(shard)
            for meta in stack:
                k, v = read_run_file(self.data_dir, meta.name, meta.checksum)
                parts_k.append(k)
                parts_v.append(v)
        if not parts_k:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return sorted_unique_run(np.concatenate(parts_k), np.concatenate(parts_v))

    def build_shard(self, shard: int, family_cls: "type[LearnedIndex]"):
        """Rebuild one shard's index: base ``build`` + per-run bulk ingest.

        This is the recovery half of the LSM contract: the base
        snapshot bulk-loads through the family's ``build`` and every
        outstanding run replays through ``bulk_insert_many`` — the
        same vectorised ingest path live merges use — in commit
        order, so duplicates resolve exactly as they did in memory.
        Returns None for a shard with no keys at all (mirroring
        :func:`repro.serving.partitioner.build_shard_indexes`).
        """
        with self._lock:
            manifest = self._require_manifest()
            base = manifest.base_for(shard)
            runs = manifest.runs_for(shard)
            base_arrays = (
                read_run_file(self.data_dir, base.name, base.checksum)
                if base is not None
                else (np.empty(0, np.int64), np.empty(0, np.int64))
            )
            run_arrays = [
                read_run_file(self.data_dir, m.name, m.checksum) for m in runs
            ]
        keys, values = base_arrays
        index = None
        if keys.size:
            index = family_cls.build(keys, values)
        for rk, rv in run_arrays:
            if rk.size == 0:
                continue
            if index is None:
                index = family_cls.build(rk, rv)
            else:
                index.bulk_insert_many(rk, rv)
        return index

    # ------------------------------------------------------------------
    # Hygiene
    # ------------------------------------------------------------------
    def sweep_orphans(self) -> list[str]:
        """Delete files the manifest does not reference; returns names.

        Run on open: ``.tmp`` stragglers from an interrupted write,
        run files whose commit never landed, and compaction inputs
        whose post-commit deletion was cut short are all unreferenced
        and safe to drop.
        """
        with self._lock:
            live = (
                self._manifest.file_names() if self._manifest is not None else set()
            )
            removed = []
            for path in sorted(self.data_dir.iterdir()):
                if not path.is_file() or path.name == MANIFEST_NAME:
                    continue
                if path.name.endswith(".tmp") or (
                    path.suffix == ".npz" and path.name not in live
                ):
                    path.unlink(missing_ok=True)
                    removed.append(path.name)
            return removed

    def verify(self) -> int:
        """Re-read and checksum every live artefact; returns the count.

        Raises :class:`~repro.store.runs.StoreCorruptionError` on the
        first mismatch — the operator drill in ``docs/OPERATIONS.md``
        runs this after restoring a data directory from backup.
        """
        with self._lock:
            manifest = self._require_manifest()
            for meta in manifest.artefacts:
                read_run_file(self.data_dir, meta.name, meta.checksum)
            return len(manifest.artefacts)
