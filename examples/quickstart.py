"""Quickstart: smooth a key set, build a learned index, optimise it.

Run with::

    python examples/quickstart.py

Walks through the library's three core moves in under a minute:

1. Algorithm 1 — CDF smoothing of a raw key set with virtual points.
2. Building a LIPP learned index over the keys.
3. Algorithm 2 (CSV) — optimising the built index in place, then
   comparing query costs for the promoted keys.
"""

from __future__ import annotations

import numpy as np

from repro import CsvConfig, LippIndex, adapter_for, apply_csv, smooth_keys
from repro.evaluation import LevelSnapshot, promoted_keys
from repro.workloads import profile_queries


def main() -> None:
    rng = np.random.default_rng(7)

    # A mildly clustered key set: a uniform base plus two dense pockets.
    keys = np.unique(
        np.concatenate(
            [
                rng.integers(0, 1_000_000, 20_000),
                500_000 + rng.integers(0, 2_000, 3_000),
                750_000 + rng.integers(0, 1_000, 2_000),
            ]
        )
    )
    print(f"keys: {keys.size} unique integers in [{keys[0]}, {keys[-1]}]")

    # ------------------------------------------------------------------
    # 1. Smooth the CDF with virtual points (Algorithm 1).
    # ------------------------------------------------------------------
    result = smooth_keys(keys, alpha=0.1)
    print(
        f"\nAlgorithm 1: inserted {result.n_virtual} virtual points "
        f"(budget {result.budget})"
    )
    print(f"  loss before: {result.original_loss:,.0f}")
    print(f"  loss after:  {result.final_loss:,.0f} "
          f"({result.loss_improvement_pct:.1f}% better)")

    # ------------------------------------------------------------------
    # 2. Build a learned index (LIPP).
    # ------------------------------------------------------------------
    index = LippIndex.build(keys)
    print(f"\nLIPP: height {index.height()}, {index.node_count()} nodes")
    print(f"  keys per level: {index.level_histogram()}")

    # ------------------------------------------------------------------
    # 3. Optimise the index with CSV (Algorithm 2).
    # ------------------------------------------------------------------
    before = LevelSnapshot.capture(index, keys)
    baseline = LippIndex.build(keys)  # untouched copy for comparison
    report = apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
    after = LevelSnapshot.capture(index, keys)

    moved = np.asarray(sorted(promoted_keys(before, after)), dtype=np.int64)
    print(f"\nCSV: rebuilt {report.nodes_rebuilt}/{report.nodes_examined} subtrees, "
          f"promoted {moved.size} keys in {report.preprocessing_seconds:.2f}s")
    print(f"  keys per level now: {index.level_histogram()}")

    if moved.size:
        sample = moved[:: max(1, moved.size // 500)]
        slow = profile_queries(baseline, sample)
        fast = profile_queries(index, sample)
        print(
            f"  promoted-key query cost: {slow.avg_simulated_ns:.0f} ns → "
            f"{fast.avg_simulated_ns:.0f} ns "
            f"({100 * (slow.avg_simulated_ns - fast.avg_simulated_ns) / slow.avg_simulated_ns:.1f}% faster)"
        )

    # Correctness never changes: every key still resolves.  One
    # lookup_many call checks the whole key set through the batch
    # query engine (no per-key Python loop).
    batch = index.lookup_many(keys)
    assert batch.hit_rate == 1.0 and np.array_equal(batch.values, keys)
    print(
        f"\nall {batch.n_queries} lookups verified in one batch "
        f"(avg {batch.levels.mean():.2f} levels) — done"
    )


if __name__ == "__main__":
    main()
