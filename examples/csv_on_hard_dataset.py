"""CSV on a hard (OSM-like) dataset across all three indexes.

Run with::

    python examples/csv_on_hard_dataset.py [n_keys]

Builds ALEX, LIPP and SALI over the clustered OSM analogue — the
paper's hardest global distribution — applies CSV at the default
α = 0.1, and prints the paper's headline metrics per index: promoted
data, query-time improvement, storage change, node reduction.
"""

from __future__ import annotations

import sys

from repro.evaluation import CSV_FAMILIES, ascii_table, run_csv_experiment


def main(n: int = 15_000) -> None:
    print(f"dataset: osm analogue, {n} keys; alpha = 0.1\n")
    rows = []
    for family in CSV_FAMILIES:
        row = run_csv_experiment(family, "osm", n=n, alpha=0.1)
        rows.append(
            [
                family,
                f"{row.height_before} -> {row.height_after}",
                f"{row.promoted_pct:.1f}%",
                f"{row.query_improvement_pct:.1f}%",
                f"{row.storage_increase_pct:+.1f}%",
                f"{row.node_reduction_pct:.1f}%",
                f"{row.preprocessing_seconds:.1f}s",
            ]
        )
    print(
        ascii_table(
            [
                "index",
                "height",
                "promoted",
                "query improvement",
                "storage",
                "node reduction",
                "CSV time",
            ],
            rows,
        )
    )
    print(
        "\nReading guide: LIPP/SALI gain by pure traversal reduction; ALEX\n"
        "trades some in-node search for the removed levels (Section 6.2.1\n"
        "of the paper), so its improvement is smaller but its height drop\n"
        "is the largest."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15_000)
