"""Compare every index family in the library on one dataset.

Run with::

    python examples/index_comparison.py [dataset] [n_keys]

Builds all seven index families (ALEX, LIPP, SALI, B+-tree, PGM, RMI,
sorted array) over the same key set and prints a side-by-side of the
structural and query-cost numbers the paper's Section 2 discusses —
traversal depth, in-node search, node counts and sizes — plus the
wall-clock throughput of the vectorised ``lookup_many`` batch engine
(the fast path every workload driver uses).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.datasets import generate
from repro.evaluation import ascii_table
from repro.indexes import INDEX_FAMILIES
from repro.workloads import QueryProfile, sample_queries


def main(dataset: str = "genome", n: int = 10_000) -> None:
    keys = generate(dataset, n)
    rng = np.random.default_rng(3)
    queries = sample_queries(keys, 10_000, rng)
    print(f"dataset: {dataset} analogue, {n} keys; 10000 uniform point queries\n")

    rows = []
    for name, cls in INDEX_FAMILIES.items():
        start = time.perf_counter()
        index = cls.build(keys)
        build_seconds = time.perf_counter() - start
        # One batch call serves the whole query array; wall-time it to
        # show the fast path, then aggregate the same result.
        start = time.perf_counter()
        batch = index.lookup_many(queries)
        batch_seconds = time.perf_counter() - start
        profile = QueryProfile.from_batch(batch)
        rows.append(
            [
                name,
                index.height(),
                index.node_count(),
                f"{index.size_bytes() / 1024:.0f} KiB",
                f"{build_seconds:.2f}s",
                f"{profile.avg_levels:.2f}",
                f"{profile.avg_search_steps:.2f}",
                f"{profile.avg_simulated_ns:.0f}",
                f"{queries.size / batch_seconds:,.0f}",
            ]
        )
    rows.sort(key=lambda r: float(r[-2]))
    print(
        ascii_table(
            [
                "index",
                "height",
                "nodes",
                "size",
                "build",
                "avg levels",
                "avg search steps",
                "avg sim ns",
                "batch lookups/s",
            ],
            rows,
        )
    )
    print(
        "\nLIPP/SALI answer with zero search steps (precise positions) but\n"
        "pay in levels on hard data — exactly the cost CSV removes; ALEX\n"
        "and PGM trade levels for bounded in-node searches; the B+-tree\n"
        "pays both, which is why learned indexes beat it (Section 6.1)."
    )


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "genome"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    main(dataset, n)
