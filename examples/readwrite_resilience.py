"""Read-write workload: virtual-point gaps absorbing insertions.

Run with::

    python examples/readwrite_resilience.py [n_keys]

Reproduces the Section 6.3 protocol on the Facebook analogue: build
LIPP on half the keys, apply CSV once, insert the other half in 0.1n
batches into both the enhanced and the original index (all through
the ``insert_many`` / ``lookup_many`` batch engine), and watch the
three Fig. 10 quantities — query time saved, storage overhead, and
insertion-time ratio — evolve per batch.  A short epilogue replays
the same insert stream through the sharded ``IndexService``, whose
write buffers absorb the batches and merge + re-smooth in the
background instead of paying per-insert structural work up front.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.evaluation import ascii_table
from repro.evaluation.runner import run_readwrite_experiment
from repro.serving import IndexService
from repro.workloads import split_read_write


def main(n: int = 12_000) -> None:
    print(f"dataset: facebook analogue, {n} keys; LIPP; alpha = 0.1")
    print("protocol: build on n/2 keys -> CSV once -> 5 batches of 0.1(n/2) inserts\n")

    observations = run_readwrite_experiment("lipp", "facebook", n=n, alpha=0.1)

    rows = []
    for obs in observations:
        rows.append(
            [
                obs.batch_index,
                obs.inserted_so_far,
                f"{obs.total_time_saved_ns:,.0f}",
                f"{obs.enhanced_profile.avg_simulated_ns:.0f}",
                f"{obs.original_profile.avg_simulated_ns:.0f}",
                f"{obs.storage_increase_pct:+.2f}%",
                f"{obs.insert_time_increase_pct:+.0f}%" if obs.batch_index else "-",
            ]
        )
    print(
        ascii_table(
            [
                "batch",
                "inserted",
                "time saved (ns)",
                "enhanced avg ns",
                "original avg ns",
                "storage",
                "insert time",
            ],
            rows,
        )
    )
    print(
        "\nThe enhanced index keeps its query advantage on the promoted keys\n"
        "throughout the batches; inserts are absorbed by the gaps the\n"
        "virtual points reserved (the paper's 'side benefit', Section 2.3)."
    )

    # ------------------------------------------------------------------
    # Epilogue: the same stream through the sharded serving layer.
    # ------------------------------------------------------------------
    from repro.datasets import load

    keys = load("facebook", n)
    rng = np.random.default_rng(0)
    split = split_read_write(keys, rng)
    with IndexService.build(
        split.build_keys, family="lipp", n_shards=4, alpha=0.1,
        staleness_threshold=0.05,
    ) as service:
        for batch in split.batches:
            service.insert_many(batch)
        inserted = np.sort(np.concatenate(split.batches))
        assert service.lookup_many(inserted).found.all()
        stats = service.stats
        print(
            f"\nserving layer: {split.total_inserts} inserts buffered into 4 "
            f"shards -> {stats.merges} merges, {stats.resmoothed_shards} "
            f"shards re-smoothed, {stats.buffer_hits} reads served from the "
            "write buffers"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12_000)
