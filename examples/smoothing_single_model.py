"""Single-model smoothing walkthrough (Section 4 of the paper).

Run with::

    python examples/smoothing_single_model.py

Reproduces the paper's running example end to end on the Fig. 2 toy
key set: the loss curve over candidate values (Fig. 3), the derivative
filter (Fig. 4), the greedy insertion trace, and the greedy-vs-
exhaustive comparison (Table 2) — all printed as text.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import derivative_curve, filtered_candidates, loss_curve
from repro.core.segment_stats import SegmentStats
from repro.core.smoothing import smooth_keys, smooth_keys_exhaustive
from repro.datasets import FIG2_TOY_KEYS


def ascii_plot(xs: np.ndarray, ys: np.ndarray, height: int = 10, label: str = "") -> str:
    """Tiny fixed-width scatter plot for terminals."""
    lo, hi = float(ys.min()), float(ys.max())
    span = (hi - lo) or 1.0
    rows = [[" "] * len(xs) for __ in range(height)]
    for col, y in enumerate(ys):
        row = int((hi - float(y)) / span * (height - 1))
        rows[row][col] = "*"
    lines = ["".join(r) for r in rows]
    lines.append("-" * len(xs))
    lines.append(f"x: {int(xs[0])}..{int(xs[-1])}  y: {lo:.2f}..{hi:.2f}  {label}")
    return "\n".join(lines)


def main() -> None:
    keys = FIG2_TOY_KEYS
    stats = SegmentStats(keys)
    print(f"toy keys (Fig. 2): {keys.tolist()}")
    print(f"original refitted loss: {stats.base_loss():.3f}  (paper: 8.33)\n")

    # Fig. 3 — loss per candidate virtual-point value.
    values, losses = loss_curve(stats)
    print("Fig. 3 — loss for every candidate insertion value")
    print(ascii_plot(values, losses, label="loss(k_v)"))
    best = int(values[np.argmin(losses)])
    print(f"best single virtual point: {best} (loss {losses.min():.3f})\n")

    # Fig. 4 — derivative of the loss; sign changes mark interior minima.
    dvalues, derivs = derivative_curve(stats)
    print("Fig. 4 — first derivative of the loss")
    print(ascii_plot(dvalues, derivs, label="dLoss/dValue"))
    kept = filtered_candidates(stats)
    print(
        f"derivative filter keeps {len(kept)} of {values.size} candidates: "
        f"{[v for v, __ in kept]}\n"
    )

    # Greedy insertion trace (Algorithm 1) at the paper's α = 0.5.
    result = smooth_keys(keys, alpha=0.5)
    print("Algorithm 1 (greedy), alpha = 0.5:")
    for step, loss in enumerate(result.loss_trace):
        inserted = "" if step == 0 else f"  after inserting {result.virtual_points[step - 1]}"
        print(f"  step {step}: loss {loss:.3f}{inserted}")
    print(f"combined point set: {result.points.tolist()}")
    print(f"loss over original keys only: {result.loss_over_original_keys():.3f} "
          f"(paper: 2.04)\n")

    # Table 2 — greedy vs exhaustive.
    exhaustive = smooth_keys_exhaustive(keys, alpha=0.5)
    print("Table 2 — approximation quality:")
    print(f"  exhaustive: loss {exhaustive.final_loss:.3f} "
          f"in {exhaustive.elapsed_seconds * 1e3:.1f} ms "
          f"(points {sorted(exhaustive.virtual_points)})")
    print(f"  greedy:     loss {result.final_loss:.3f} "
          f"in {result.elapsed_seconds * 1e3:.1f} ms "
          f"(points {sorted(result.virtual_points)})")
    speedup = exhaustive.elapsed_seconds / max(result.elapsed_seconds, 1e-9)
    print(f"  exhaustive/greedy time ratio: {speedup:,.0f}x")


if __name__ == "__main__":
    main()
