"""Poisoning vs smoothing: the same machinery, opposite directions.

Run with::

    python examples/poisoning_vs_smoothing.py

Section 2.3 of the paper roots CDF smoothing in poisoning attacks on
learned indexes (Kornaropoulos et al.): poisoning inserts points that
*maximise* the model's SSE, smoothing inserts points that *minimise*
it.  This example runs both from the same key set with the same
budget and shows the mirrored effect — first on the loss, then on an
actual LIPP index built over each point set.
"""

from __future__ import annotations

import numpy as np

from repro import poison_keys, smooth_keys
from repro.datasets import generate
from repro.indexes import LippIndex


def describe(name: str, points: np.ndarray) -> str:
    index = LippIndex.build(points)
    histogram = index.level_histogram()
    deep = sum(v for level, v in histogram.items() if level >= 3)
    return (
        f"{name:<22} height {index.height()}  nodes {index.node_count():>5}  "
        f"keys at level>=3: {deep:>5}"
    )


def main() -> None:
    keys = generate("facebook", 5_000)
    budget = 500
    print(f"key set: facebook analogue, {keys.size} keys; budget {budget} points\n")

    smoothed = smooth_keys(keys, budget=budget)
    poisoned = poison_keys(keys, budget=budget)

    print("loss (SSE of the refitted linear model):")
    print(f"  original: {smoothed.original_loss:,.0f}")
    print(f"  smoothed: {smoothed.final_loss:,.0f} "
          f"({smoothed.loss_improvement_pct:+.1f}% improvement)")
    print(f"  poisoned: {poisoned.final_loss:,.0f} "
          f"({poisoned.loss_increase_pct:+.1f}% degradation)\n")

    print("effect on a LIPP index built over each point set:")
    print("  " + describe("original keys", keys))
    print("  " + describe("with smoothing points", smoothed.points))
    print("  " + describe("with poisoning points", poisoned.points))

    print(
        "\nSmoothing points straighten the CDF, so the index resolves more\n"
        "keys in shallow levels; poisoning points bend it, pushing keys\n"
        "into deeper conflict subtrees — the attack CSV runs in reverse."
    )


if __name__ == "__main__":
    main()
